"""Equivalence tests for the vectorized bulk decode layer (ISSUE 1).

The byte-parallel VarInt decoder and the chunk decoder must be *bit-exact*
equivalents of the scalar reference decoders on every graph family --
including interval-encoded, chunked high-degree, weighted, and empty
neighborhoods -- for every chunk shape LP's scheduler can produce.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators as gen
from repro.graph.access import chunk_adjacency, full_adjacency
from repro.graph.builder import from_edges
from repro.graph.compressed import compress_graph, decompress_graph
from repro.graph.varint import (
    decode_region_bulk,
    decode_signed_varint,
    decode_stream,
    decode_stream_bulk,
    encode_signed_varint,
    encode_stream,
    encode_varint,
    zigzag_decode,
)

from conftest import graphs_equal

values_strategy = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=0, max_value=2**63 - 1),
    ),
    max_size=200,
)


class TestStreamBulk:
    @given(values=values_strategy)
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_decoder(self, values):
        buf = bytearray()
        encode_stream(np.array(values, dtype=np.int64), buf)
        ref, ref_pos = decode_stream(bytes(buf), 0, len(values))
        got, got_pos = decode_stream_bulk(bytes(buf), 0, len(values))
        assert got_pos == ref_pos
        assert np.array_equal(got, ref)

    @given(values=values_strategy, prefix=st.integers(min_value=0, max_value=50))
    @settings(max_examples=100, deadline=None)
    def test_mid_buffer_offset(self, values, prefix):
        buf = bytearray(b"\xff" * prefix)  # garbage continuation bytes before
        encode_stream(np.array(values, dtype=np.int64), buf)
        buf.extend(b"\x01\x01")  # trailing values that must not be consumed
        ref, ref_pos = decode_stream(bytes(buf), prefix, len(values))
        got, got_pos = decode_stream_bulk(bytes(buf), prefix, len(values))
        assert got_pos == ref_pos
        assert np.array_equal(got, ref)

    def test_empty_count(self):
        vals, pos = decode_stream_bulk(b"\x05", 0, 0)
        assert len(vals) == 0 and pos == 0

    def test_truncated_stream_raises(self):
        buf = bytearray()
        encode_varint(5, buf)
        with pytest.raises(ValueError, match="truncated"):
            decode_stream_bulk(bytes(buf), 0, 2)
        # a buffer ending mid-value (continuation bit set) is also truncated
        with pytest.raises(ValueError):
            decode_stream_bulk(b"\x85\x80", 0, 1)

    def test_region_decodes_every_value(self):
        values = np.array([0, 1, 127, 128, 300, 2**40, 2**63 - 1], dtype=object)
        buf = bytearray()
        for v in values:
            encode_varint(int(v), buf)
        got, starts = decode_region_bulk(np.frombuffer(bytes(buf), dtype=np.uint8))
        assert got.tolist() == [int(v) for v in values]
        assert starts[0] == 0 and len(starts) == len(values)

    def test_region_rejects_dangling_continuation(self):
        with pytest.raises(ValueError, match="boundary"):
            decode_region_bulk(np.frombuffer(b"\x01\x85", dtype=np.uint8))

    # +/-(2^62 - 1): the widest magnitude whose zigzag fold (2|v|+1) still
    # fits the decoder's int64 lanes, same domain as scalar decode_stream
    @given(
        st.lists(
            st.integers(min_value=-(2**62) + 1, max_value=2**62 - 1), max_size=60
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_zigzag_matches_signed_varint(self, values):
        buf = bytearray()
        for v in values:
            encode_signed_varint(v, buf)
        zz, _ = decode_stream_bulk(bytes(buf), 0, len(values))
        got = zigzag_decode(zz)
        pos = 0
        for i, v in enumerate(values):
            ref, pos = decode_signed_varint(bytes(buf), pos)
            assert ref == v == got[i]


def _assert_chunk_matches_scalar(cg, chunk):
    owner, nbrs, wgts = cg.decode_chunk(chunk)
    degs = np.array(
        [len(cg._decode_scalar(int(u))[0]) for u in chunk], dtype=np.int64
    )
    assert np.array_equal(owner, np.repeat(np.arange(len(chunk)), degs))
    lo = 0
    for i, u in enumerate(chunk.tolist()):
        ref_n, ref_w = cg._decode_scalar(u)
        hi = lo + len(ref_n)
        assert np.array_equal(nbrs[lo:hi], ref_n), f"vertex {u}"
        if ref_w is None:
            assert np.all(wgts[lo:hi] == 1)
        else:
            assert np.array_equal(wgts[lo:hi], ref_w), f"vertex {u}"
        lo = hi
    assert lo == len(nbrs) == len(wgts)


def _chunk_shapes(n, rng):
    yield np.arange(n, dtype=np.int64)  # full scan
    yield np.arange(0, n, 3, dtype=np.int64)  # strided subset
    yield rng.permutation(n).astype(np.int64)  # LP's permuted order
    yield rng.permutation(n)[: max(1, n // 4)].astype(np.int64)
    yield np.empty(0, dtype=np.int64)  # empty chunk


class TestDecodeChunk:
    def test_families_match_scalar(self, family_graph):
        cg = compress_graph(family_graph)
        rng = np.random.default_rng(0)
        for chunk in _chunk_shapes(cg.n, rng):
            _assert_chunk_matches_scalar(cg, chunk)

    def test_rhg_matches_scalar(self, rhg_graph):
        cg = compress_graph(rhg_graph)
        _assert_chunk_matches_scalar(cg, np.arange(cg.n, dtype=np.int64))

    def test_no_intervals_matches_scalar(self, web_graph):
        cg = compress_graph(web_graph, enable_intervals=False)
        rng = np.random.default_rng(1)
        for chunk in _chunk_shapes(cg.n, rng):
            _assert_chunk_matches_scalar(cg, chunk)

    def test_weighted_matches_scalar(self, text_graph):
        assert text_graph.has_edge_weights
        cg = compress_graph(text_graph)
        rng = np.random.default_rng(2)
        for chunk in _chunk_shapes(cg.n, rng):
            _assert_chunk_matches_scalar(cg, chunk)

    def test_empty_neighborhoods(self):
        g = from_edges(10, np.array([[0, 1], [5, 6]], dtype=np.int64))
        cg = compress_graph(g)
        _assert_chunk_matches_scalar(cg, np.arange(10, dtype=np.int64))
        # a chunk of only isolated vertices
        owner, nbrs, wgts = cg.decode_chunk(np.array([2, 3, 4], dtype=np.int64))
        assert len(owner) == len(nbrs) == len(wgts) == 0

    def test_chunked_high_degree(self):
        # star + ring so one vertex far exceeds the threshold
        edges = [[0, v] for v in range(1, 301)]
        edges += [[v, v + 1] for v in range(1, 300)]
        g = from_edges(301, np.array(edges, dtype=np.int64))
        cg = compress_graph(g, high_degree_threshold=64, chunk_length=16)
        rng = np.random.default_rng(3)
        for chunk in _chunk_shapes(cg.n, rng):
            _assert_chunk_matches_scalar(cg, chunk)

    def test_chunked_high_degree_weighted(self):
        edges = np.array([[0, v] for v in range(1, 201)], dtype=np.int64)
        weights = np.arange(1, 201, dtype=np.int64) * 7
        g = from_edges(201, edges, weights)
        cg = compress_graph(g, high_degree_threshold=32, chunk_length=8)
        _assert_chunk_matches_scalar(cg, np.arange(cg.n, dtype=np.int64))

    def test_degrees_cache_matches_protocol(self, family_graph):
        cg = compress_graph(family_graph)
        degs = cg.degrees
        assert np.array_equal(degs, cg.degrees)  # cached object is stable
        for u in range(cg.n):
            assert degs[u] == len(cg._decode_scalar(u)[0])

    def test_full_adjacency_matches_csr(self, family_graph):
        cg = compress_graph(family_graph)
        src_c, dst_c, w_c = full_adjacency(family_graph)
        src_z, dst_z, w_z = full_adjacency(cg)
        assert np.array_equal(src_c, src_z)
        # neighborhoods agree as sets per vertex (CSR order is sorted too)
        assert np.array_equal(np.sort(dst_c), np.sort(dst_z))
        for u in (0, cg.n // 2, cg.n - 1):
            sel_c = src_c == u
            sel_z = src_z == u
            oc = np.argsort(dst_c[sel_c], kind="stable")
            oz = np.argsort(dst_z[sel_z], kind="stable")
            assert np.array_equal(dst_c[sel_c][oc], dst_z[sel_z][oz])
            assert np.array_equal(
                np.asarray(w_c)[sel_c][oc], np.asarray(w_z)[sel_z][oz]
            )

    def test_access_chunk_adjacency_dispatches_to_bulk(self, web_graph):
        cg = compress_graph(web_graph)
        chunk = np.arange(cg.n, dtype=np.int64)
        o1, n1, w1 = chunk_adjacency(cg, chunk)
        o2, n2, w2 = cg.decode_chunk(chunk)
        assert np.array_equal(o1, o2)
        assert np.array_equal(n1, n2)
        assert np.array_equal(w1, w2)

    def test_decompress_roundtrip_uses_bulk(self, family_graph):
        cg = compress_graph(family_graph)
        assert graphs_equal(decompress_graph(cg), family_graph)


class TestDecodeCache:
    def test_cached_results_equal_uncached(self, web_graph):
        cg = compress_graph(web_graph)
        rng = np.random.default_rng(4)
        chunks = [rng.permutation(cg.n).astype(np.int64) for _ in range(3)]
        ref = [cg.decode_chunk(c) for c in chunks]
        cg.enable_decode_cache(64 << 20)
        try:
            for c, (ro, rn, rw) in zip(chunks, ref):
                o, n, w = cg.decode_chunk(c)
                assert np.array_equal(o, ro)
                assert np.array_equal(n, rn)
                assert np.array_equal(w, rw)
            stats = cg.decode_cache_stats
            assert stats["misses"] > 0 and stats["hits"] > 0
        finally:
            cg.disable_decode_cache()
        assert cg.decode_cache_stats is None

    def test_lru_bound_is_respected(self, web_graph):
        cg = compress_graph(web_graph)
        cg.enable_decode_cache(4096, page_size=64)
        try:
            cg.decode_chunk(np.arange(cg.n, dtype=np.int64))
            stats = cg.decode_cache_stats
            assert stats["evictions"] > 0
            # at most one page over the bound at any time; after eviction
            # the resident set fits (modulo the single newest page)
            assert stats["pages"] <= 2 or stats["bytes"] <= 4096 * 2
        finally:
            cg.disable_decode_cache()

    def test_tracker_registration(self, web_graph):
        from repro.memory.tracker import MemoryTracker

        cg = compress_graph(web_graph)
        tracker = MemoryTracker()
        base = tracker.current_bytes
        cg.enable_decode_cache(64 << 20, tracker=tracker)
        cg.decode_chunk(np.arange(cg.n, dtype=np.int64))
        assert tracker.current_bytes > base
        assert tracker.current_bytes - base == cg.decode_cache_stats["bytes"]
        cg.disable_decode_cache()
        assert tracker.current_bytes == base

    def test_lp_clustering_cache_config_is_equivalent(self):
        from repro.core.config import terapart
        from repro.core.partitioner import partition

        g = gen.weblike(1200, avg_degree=8, seed=5)
        r0 = partition(g, 8, terapart(seed=3))
        r1 = partition(g, 8, terapart(seed=3).with_(decode_cache_bytes=8 << 20))
        assert r1.cut == r0.cut
        assert np.array_equal(r0.pgraph.partition, r1.pgraph.partition)
