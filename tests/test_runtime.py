"""Unit tests for the virtual-thread scheduler (repro.parallel.runtime)."""

import numpy as np
import pytest

from repro.parallel.runtime import ParallelRuntime


class TestSchedule:
    def test_covers_all_items_once(self):
        rt = ParallelRuntime(4, chunk_size=7)
        order = np.random.default_rng(0).permutation(100)
        seen = np.concatenate([c for _, c in rt.schedule(order)])
        assert np.array_equal(seen, order)

    def test_round_robin_ownership(self):
        rt = ParallelRuntime(3, chunk_size=10)
        sched = rt.schedule(np.arange(45))
        assert sched.owner == [0, 1, 2, 0, 1]

    def test_empty_order(self):
        rt = ParallelRuntime(2)
        sched = rt.schedule(np.empty(0, dtype=np.int64))
        assert sched.num_chunks == 0

    def test_chunk_sizes(self):
        rt = ParallelRuntime(2, chunk_size=8)
        sched = rt.schedule(np.arange(20))
        sizes = [len(c) for _, c in sched]
        assert sizes == [8, 8, 4]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ParallelRuntime(0)
        with pytest.raises(ValueError):
            ParallelRuntime(1, chunk_size=0)

    def test_deterministic_wrt_p(self):
        """Chunk contents depend only on order and chunk_size, not p."""
        order = np.arange(50)
        c4 = [c.tolist() for _, c in ParallelRuntime(4, chunk_size=6).schedule(order)]
        c8 = [c.tolist() for _, c in ParallelRuntime(8, chunk_size=6).schedule(order)]
        assert c4 == c8


class TestScheduleBalanced:
    def test_covers_all_items(self):
        rt = ParallelRuntime(4, chunk_size=10)
        order = np.arange(100)
        weights = np.random.default_rng(1).integers(1, 50, size=100)
        seen = np.concatenate([c for _, c in rt.schedule_balanced(order, weights)])
        assert np.array_equal(seen, order)

    def test_balances_heavy_items(self):
        rt = ParallelRuntime(2, chunk_size=4)
        order = np.arange(8)
        weights = np.array([100, 1, 1, 1, 1, 1, 1, 100])
        sched = rt.schedule_balanced(order, weights)
        # the heavy head item should not share a chunk with everything
        first_chunk = sched.chunks[0]
        assert len(first_chunk) < 8

    def test_empty(self):
        rt = ParallelRuntime(2)
        sched = rt.schedule_balanced(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert sched.num_chunks == 0


class TestThreadLocals:
    def test_one_per_thread(self):
        rt = ParallelRuntime(5)
        locals_ = rt.thread_locals(lambda tid: {"tid": tid})
        assert len(locals_) == 5
        assert [d["tid"] for d in locals_] == list(range(5))


class TestStats:
    def test_record_parallel_work(self):
        rt = ParallelRuntime(8)
        rt.record("phase", work=80.0)
        s = rt.stats("phase")
        assert s.work == 80.0
        assert s.span == 0.0  # no irreducible critical path recorded

    def test_sequential_work_tracked_separately(self):
        rt = ParallelRuntime(8)
        rt.record("phase", work=80.0, sequential=True)
        s = rt.stats("phase")
        assert s.sequential_work == 80.0

    def test_explicit_span_accumulates(self):
        rt = ParallelRuntime(8)
        rt.record("phase", work=80.0, span=5.0)
        rt.record("phase", work=80.0, span=7.0)
        assert rt.stats("phase").span == 12.0

    def test_max_parallelism_takes_minimum(self):
        rt = ParallelRuntime(8)
        rt.record("phase", work=1.0, max_parallelism=16)
        rt.record("phase", work=1.0, max_parallelism=4)
        assert rt.stats("phase").max_parallelism == 4

    def test_stats_accumulate(self):
        rt = ParallelRuntime(2)
        rt.record("x", work=10, bytes_moved=100, atomic_ops=3)
        rt.record("x", work=20, bytes_moved=200, atomic_ops=4)
        s = rt.stats("x")
        assert s.work == 30
        assert s.bytes_moved == 300
        assert s.atomic_ops == 7

    def test_reset(self):
        rt = ParallelRuntime(2)
        rt.record("x", work=1)
        rt.reset_stats()
        assert rt.all_stats() == {}
