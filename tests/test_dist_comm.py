"""Tests for the simulated communicator (repro.dist.comm)."""

import numpy as np
import pytest

from repro.dist.comm import SimComm


class TestCollectives:
    def test_alltoallv_transposes(self):
        comm = SimComm(3)
        send = [[f"{s}->{d}" for d in range(3)] for s in range(3)]
        recv = comm.alltoallv(send)
        for d in range(3):
            for s in range(3):
                assert recv[d][s] == f"{s}->{d}"

    def test_alltoallv_shape_checked(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.alltoallv([[1, 2]])

    def test_allgather(self):
        comm = SimComm(4)
        out = comm.allgather([10, 11, 12, 13])
        assert all(o == [10, 11, 12, 13] for o in out)

    def test_allgather_arity_checked(self):
        with pytest.raises(ValueError):
            SimComm(3).allgather([1, 2])

    def test_allreduce_sum(self):
        comm = SimComm(3)
        vals = [np.array([1, 2]), np.array([10, 20]), np.array([100, 200])]
        assert comm.allreduce(vals).tolist() == [111, 222]

    def test_allreduce_max_min(self):
        comm = SimComm(2)
        vals = [np.array([1, 9]), np.array([5, 3])]
        assert comm.allreduce(vals, op="max").tolist() == [5, 9]
        assert comm.allreduce(vals, op="min").tolist() == [1, 3]

    def test_allreduce_unknown_op(self):
        with pytest.raises(ValueError):
            SimComm(2).allreduce([np.array([1]), np.array([2])], op="xor")

    def test_bcast(self):
        comm = SimComm(3)
        out = comm.bcast({"x": 1})
        assert len(out) == 3 and all(o == {"x": 1} for o in out)

    def test_single_rank(self):
        comm = SimComm(1)
        assert comm.alltoallv([[42]]) == [[42]]
        assert comm.allreduce([np.array([7])]).tolist() == [7]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SimComm(0)


class TestStats:
    def test_traffic_counted_excluding_self(self):
        comm = SimComm(2)
        a = np.zeros(100, dtype=np.int64)
        comm.alltoallv([[a, a], [a, a]])
        # only the two off-diagonal messages count
        assert comm.stats.bytes_sent == 2 * a.nbytes

    def test_supersteps_counted(self):
        comm = SimComm(2)
        comm.barrier()
        comm.allgather([1, 2])
        assert comm.stats.supersteps == 2

    def test_per_rank_trackers(self):
        comm = SimComm(2)
        comm.trackers[0].alloc("x", 100)
        comm.trackers[1].alloc("y", 300)
        assert comm.max_rank_peak_bytes() == 300
        assert comm.rank_peaks() == [100, 300]
