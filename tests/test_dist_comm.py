"""Tests for the simulated communicator (repro.dist.comm)."""

import numpy as np
import pytest

from repro.dist.comm import SimComm, _nbytes


class TestCollectives:
    def test_alltoallv_transposes(self):
        comm = SimComm(3)
        send = [[f"{s}->{d}" for d in range(3)] for s in range(3)]
        recv = comm.alltoallv(send)
        for d in range(3):
            for s in range(3):
                assert recv[d][s] == f"{s}->{d}"

    def test_alltoallv_shape_checked(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.alltoallv([[1, 2]])

    def test_allgather(self):
        comm = SimComm(4)
        out = comm.allgather([10, 11, 12, 13])
        assert all(o == [10, 11, 12, 13] for o in out)

    def test_allgather_arity_checked(self):
        with pytest.raises(ValueError):
            SimComm(3).allgather([1, 2])

    def test_allreduce_sum(self):
        comm = SimComm(3)
        vals = [np.array([1, 2]), np.array([10, 20]), np.array([100, 200])]
        assert comm.allreduce(vals).tolist() == [111, 222]

    def test_allreduce_max_min(self):
        comm = SimComm(2)
        vals = [np.array([1, 9]), np.array([5, 3])]
        assert comm.allreduce(vals, op="max").tolist() == [5, 9]
        assert comm.allreduce(vals, op="min").tolist() == [1, 3]

    def test_allreduce_unknown_op(self):
        with pytest.raises(ValueError):
            SimComm(2).allreduce([np.array([1]), np.array([2])], op="xor")

    def test_bcast(self):
        comm = SimComm(3)
        out = comm.bcast({"x": 1})
        assert len(out) == 3 and all(o == {"x": 1} for o in out)

    def test_single_rank(self):
        comm = SimComm(1)
        assert comm.alltoallv([[42]]) == [[42]]
        assert comm.allreduce([np.array([7])]).tolist() == [7]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SimComm(0)


class TestStats:
    def test_traffic_counted_excluding_self(self):
        comm = SimComm(2)
        a = np.zeros(100, dtype=np.int64)
        comm.alltoallv([[a, a], [a, a]])
        # only the two off-diagonal messages count
        assert comm.stats.bytes_sent == 2 * a.nbytes

    def test_supersteps_counted(self):
        comm = SimComm(2)
        comm.barrier()
        comm.allgather([1, 2])
        assert comm.stats.supersteps == 2

    def test_per_rank_trackers(self):
        comm = SimComm(2)
        comm.trackers[0].alloc("x", 100)
        comm.trackers[1].alloc("y", 300)
        assert comm.max_rank_peak_bytes() == 300
        assert comm.rank_peaks() == [100, 300]


class TestPayloadSizing:
    """``_nbytes`` against hand-computed wire sizes."""

    def test_array_is_true_buffer_size(self):
        assert _nbytes(np.zeros(10, dtype=np.int64)) == 80
        assert _nbytes(np.zeros(10, dtype=np.int32)) == 40
        assert _nbytes(np.zeros((3, 4), dtype=np.float64)) == 96
        assert _nbytes(np.empty(0, dtype=np.int64)) == 0

    def test_buffers_and_scalars(self):
        assert _nbytes(b"abcd") == 4
        assert _nbytes(bytearray(7)) == 7
        assert _nbytes(True) == 1
        assert _nbytes(np.bool_(False)) == 1
        assert _nbytes(3) == 8
        assert _nbytes(2.5) == 8
        assert _nbytes(np.int32(3)) == 8
        assert _nbytes("héllo") == len("héllo".encode("utf-8"))
        assert _nbytes(None) == 0

    def test_containers_recurse(self):
        payload = [np.zeros(5, dtype=np.int64), (1, 2.0), None]
        assert _nbytes(payload) == 40 + 16 + 0
        assert _nbytes({"k": np.zeros(2, dtype=np.int64)}) == 1 + 16

    def test_alltoallv_traffic_hand_computed(self):
        comm = SimComm(3)
        a = np.zeros(4, dtype=np.int64)  # 32 bytes
        send = [[a, a, a] for _ in range(3)]
        comm.alltoallv(send)
        # 6 off-diagonal messages of 32 bytes each
        assert comm.stats.bytes_sent == 6 * 32
        assert comm.stats.messages == 6

    def test_allgather_traffic_hand_computed(self):
        comm = SimComm(4)
        comm.allgather([np.zeros(2, dtype=np.int64)] * 4)  # 16 B per rank
        # each rank's 16 B item travels to the other 3 ranks
        assert comm.stats.bytes_sent == 4 * 16 * 3

    def test_allreduce_traffic_hand_computed(self):
        comm = SimComm(3)
        comm.allreduce([np.zeros(8, dtype=np.int64)] * 3)  # 64 B operand
        # reduce-then-broadcast tree: 2 traversals of (size-1) links
        assert comm.stats.bytes_sent == 64 * 2 * 2

    def test_bcast_traffic_hand_computed(self):
        comm = SimComm(4)
        comm.bcast(np.zeros(3, dtype=np.int64))  # 24 B to 3 other ranks
        assert comm.stats.bytes_sent == 24 * 3
        assert comm.stats.messages == 3


class TestPerKindStats:
    def test_by_kind_split(self):
        comm = SimComm(2)
        a = np.zeros(4, dtype=np.int64)
        comm.alltoallv([[a, a], [a, a]])
        comm.alltoallv([[a, a], [a, a]])
        comm.allreduce([np.zeros(1, dtype=np.int64)] * 2)
        comm.bcast(7)
        comm.barrier()
        kinds = comm.stats.by_kind
        assert kinds["alltoallv"].calls == 2
        assert kinds["alltoallv"].bytes_sent == 2 * 2 * 32
        assert kinds["allreduce"].calls == 1
        assert kinds["allreduce"].bytes_sent == 8 * 2 * 1
        assert kinds["bcast"].bytes_sent == 8
        assert kinds["barrier"].calls == 1
        assert kinds["barrier"].bytes_sent == 0
        # the aggregate is exactly the sum of the per-kind split
        assert comm.stats.bytes_sent == sum(
            k.bytes_sent for k in kinds.values()
        )
        assert comm.stats.messages == sum(
            k.messages for k in kinds.values()
        )
        assert comm.stats.supersteps == sum(
            k.calls for k in kinds.values()
        )
