"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph import generators as gen
from repro.graph.io import write_binary, write_metis


@pytest.fixture
def graph_file(tmp_path):
    g = gen.rgg2d(500, 8.0, seed=1)
    path = tmp_path / "g.bin"
    write_binary(g, path)
    return path, g


class TestPartitionCommand:
    def test_writes_partition_file(self, graph_file, capsys):
        path, g = graph_file
        out = path.parent / "g.part"
        rc = main(
            ["partition", str(path), "-k", "4", "--out", str(out), "--seed", "1"]
        )
        assert rc == 0
        part = np.loadtxt(out, dtype=int)
        assert len(part) == g.n
        assert set(np.unique(part)) <= set(range(4))
        captured = capsys.readouterr().out
        assert "cut:" in captured and "balanced: True" in captured

    def test_default_output_name(self, graph_file):
        path, g = graph_file
        main(["partition", str(path), "-k", "2"])
        assert (path.parent / "g.bin.part2").exists()

    def test_stream_compress_flag(self, graph_file, capsys):
        path, g = graph_file
        rc = main(["partition", str(path), "-k", "4", "--stream-compress"])
        assert rc == 0

    def test_preset_selection(self, graph_file):
        path, _ = graph_file
        rc = main(["partition", str(path), "-k", "2", "--preset", "kaminpar"])
        assert rc == 0

    def test_metis_input(self, tmp_path):
        g = gen.grid2d(10, 10)
        path = tmp_path / "g.metis"
        write_metis(g, path)
        rc = main(["partition", str(path), "-k", "2"])
        assert rc == 0


class TestCompressCommand:
    def test_reports_ratios(self, graph_file, capsys):
        path, _ = graph_file
        rc = main(["compress", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ratio" in out and "intervals" in out


class TestGenerateCommand:
    @pytest.mark.parametrize("family", ["rgg2d", "weblike", "kmer", "ba", "er"])
    def test_generates_valid_file(self, tmp_path, family, capsys):
        out = tmp_path / "out.bin"
        rc = main(
            ["generate", "--family", family, "--n", "300", "--out", str(out)]
        )
        assert rc == 0
        from repro.graph.io import read_binary

        g = read_binary(out)
        g.validate()
        assert g.n == 300


class TestStatsCommand:
    def test_prints_stats(self, graph_file, capsys):
        path, _ = graph_file
        rc = main(["stats", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "n=" in out and "interval edge fraction" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_k_rejected(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            main(["partition", str(path)])


class TestPortfolioAndMetricsFlags:
    def test_seeds_flag(self, graph_file, capsys):
        path, _ = graph_file
        rc = main(["partition", str(path), "-k", "4", "--seeds", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "portfolio" in out and "best of 2 seeds" in out

    def test_metrics_flag(self, graph_file, capsys):
        path, _ = graph_file
        rc = main(["partition", str(path), "-k", "4", "--metrics"])
        assert rc == 0
        assert "comm" in capsys.readouterr().out.replace("cv=", "comm")


class TestBenchCommands:
    """The regression observatory CLI: record / baseline / compare / trend."""

    @pytest.fixture(scope="class")
    def recorded_db(self, tmp_path_factory):
        """One real smoke run recorded into a fresh run DB (shared: slow)."""
        db = tmp_path_factory.mktemp("bench") / "runs.jsonl"
        rc = main(
            [
                "bench", "record", "--suite", "smoke",
                "--instances", "fem-grid", "--seeds", "0", "1",
                "--label", "base", "--db", str(db),
            ]
        )
        assert rc == 0
        return db

    def test_record_appends_stamped_records(self, recorded_db, capsys):
        from repro.obs.regress.rundb import RunDB

        recs = RunDB(recorded_db).load()
        assert len(recs) == 2
        assert all(r["kind"] == "partition" for r in recs)
        assert all(r["label"] == "base" for r in recs)
        assert all(r["obs"] is not None for r in recs)  # obs rides along
        assert recs[0]["config"]["name"] == "terapart"

    def test_baseline_compare_roundtrip_neutral(self, recorded_db, capsys):
        base_out = recorded_db.parent / "smoke.json"
        rc = main(
            [
                "bench", "baseline", "--name", "cli-smoke",
                "--db", str(recorded_db), "--label", "base",
                "--out", str(base_out),
            ]
        )
        assert rc == 0
        assert "1 groups" in capsys.readouterr().out

        traj = recorded_db.parent / "traj.json"
        rc = main(
            [
                "bench", "compare", "--baseline", str(base_out),
                "--db", str(recorded_db), "--label", "base",
                "--gate", "--trajectory", str(traj),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "perf gate: passed" in out
        assert "neutral" in out
        import json

        doc = json.loads(traj.read_text())
        assert doc["kind"] == "trajectory" and doc["regressed"] is False

    def test_compare_gate_fails_on_synthetic_regression(self, tmp_path, capsys):
        """No real runs needed: fabricate a DB + baseline, inflate wall."""
        from repro.bench.harness import RunRecord
        from repro.obs.regress.compare import capture_baseline
        from repro.obs.regress.rundb import RunDB, make_record

        def rec(seed, wall):
            return make_record(
                RunRecord(
                    "terapart", "fem-grid", 4, seed,
                    cut=100, balanced=True, imbalance=0.01,
                    wall_seconds=wall, modeled_seconds=wall, peak_bytes=1000,
                ),
                bench="smoke", label="cand", env={},
            )

        capture_baseline(
            [rec(s, 1.0) for s in range(3)], "synthetic"
        ).save(tmp_path / "base.json")
        db = RunDB(tmp_path / "runs.jsonl")
        for s in range(3):
            db.append(rec(s, 2.0))  # 2x wall: beyond the 25% band
        rc = main(
            [
                "bench", "compare", "--baseline", str(tmp_path / "base.json"),
                "--db", str(tmp_path / "runs.jsonl"), "--label", "cand",
                "--gate", "--trajectory", str(tmp_path / "t.json"),
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "perf gate: FAILED" in out
        assert "regressed" in out

    def test_trend_renders_sparklines(self, recorded_db, capsys):
        rc = main(["bench", "trend", "--db", str(recorded_db), "--metric", "cut"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "terapart|fem-grid|4" in out
        assert "last=" in out

    def test_trend_empty_db_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "trend", "--db", str(tmp_path / "none.jsonl")])

    def test_record_unknown_instance_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "bench", "record", "--instances", "no-such-graph",
                    "--db", str(tmp_path / "db.jsonl"),
                ]
            )
