"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph import generators as gen
from repro.graph.io import write_binary, write_metis


@pytest.fixture
def graph_file(tmp_path):
    g = gen.rgg2d(500, 8.0, seed=1)
    path = tmp_path / "g.bin"
    write_binary(g, path)
    return path, g


class TestPartitionCommand:
    def test_writes_partition_file(self, graph_file, capsys):
        path, g = graph_file
        out = path.parent / "g.part"
        rc = main(
            ["partition", str(path), "-k", "4", "--out", str(out), "--seed", "1"]
        )
        assert rc == 0
        part = np.loadtxt(out, dtype=int)
        assert len(part) == g.n
        assert set(np.unique(part)) <= set(range(4))
        captured = capsys.readouterr().out
        assert "cut:" in captured and "balanced: True" in captured

    def test_default_output_name(self, graph_file):
        path, g = graph_file
        main(["partition", str(path), "-k", "2"])
        assert (path.parent / "g.bin.part2").exists()

    def test_stream_compress_flag(self, graph_file, capsys):
        path, g = graph_file
        rc = main(["partition", str(path), "-k", "4", "--stream-compress"])
        assert rc == 0

    def test_preset_selection(self, graph_file):
        path, _ = graph_file
        rc = main(["partition", str(path), "-k", "2", "--preset", "kaminpar"])
        assert rc == 0

    def test_metis_input(self, tmp_path):
        g = gen.grid2d(10, 10)
        path = tmp_path / "g.metis"
        write_metis(g, path)
        rc = main(["partition", str(path), "-k", "2"])
        assert rc == 0


class TestCompressCommand:
    def test_reports_ratios(self, graph_file, capsys):
        path, _ = graph_file
        rc = main(["compress", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ratio" in out and "intervals" in out


class TestGenerateCommand:
    @pytest.mark.parametrize("family", ["rgg2d", "weblike", "kmer", "ba", "er"])
    def test_generates_valid_file(self, tmp_path, family, capsys):
        out = tmp_path / "out.bin"
        rc = main(
            ["generate", "--family", family, "--n", "300", "--out", str(out)]
        )
        assert rc == 0
        from repro.graph.io import read_binary

        g = read_binary(out)
        g.validate()
        assert g.n == 300


class TestStatsCommand:
    def test_prints_stats(self, graph_file, capsys):
        path, _ = graph_file
        rc = main(["stats", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "n=" in out and "interval edge fraction" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_k_rejected(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            main(["partition", str(path)])


class TestPortfolioAndMetricsFlags:
    def test_seeds_flag(self, graph_file, capsys):
        path, _ = graph_file
        rc = main(["partition", str(path), "-k", "4", "--seeds", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "portfolio" in out and "best of 2 seeds" in out

    def test_metrics_flag(self, graph_file, capsys):
        path, _ = graph_file
        rc = main(["partition", str(path), "-k", "4", "--metrics"])
        assert rc == 0
        assert "comm" in capsys.readouterr().out.replace("cv=", "comm")
