"""Unit tests for emulated atomics (repro.parallel.atomics)."""

import numpy as np
import pytest

from repro.parallel.atomics import AtomicArray, AtomicCounter, DualCounter


class TestAtomicCounter:
    def test_fetch_add_returns_previous(self):
        c = AtomicCounter(10)
        assert c.fetch_add(5) == 10
        assert c.value == 15

    def test_op_count(self):
        c = AtomicCounter()
        for _ in range(7):
            c.fetch_add(1)
        assert c.op_count == 7

    def test_store_counts_as_op(self):
        # store() is an atomic op like the rest; it must hit the op ledger
        c = AtomicCounter(1)
        c.store(42)
        assert c.value == 42
        assert c.op_count == 1
        c.fetch_add(1)
        c.store(0)
        assert c.op_count == 3

    def test_compare_exchange(self):
        c = AtomicCounter(3)
        assert c.compare_exchange(3, 9)
        assert not c.compare_exchange(3, 11)
        assert c.value == 9


class TestDualCounter:
    def test_fetch_add_returns_pair_before(self):
        dc = DualCounter()
        assert dc.fetch_add(10, 2) == (0, 0)
        assert dc.fetch_add(5, 1) == (10, 2)
        assert (dc.d, dc.s) == (15, 3)

    def test_pack_unpack_roundtrip(self):
        dc = DualCounter(d=123456789, s=987654321)
        assert dc.d == 123456789
        assert dc.s == 987654321

    def test_large_values_fit_64_bits(self):
        dc = DualCounter()
        big = (1 << 63) - 1
        dc.fetch_add(big, big)
        assert dc.d == big
        assert dc.s == big

    def test_overflow_rejected(self):
        dc = DualCounter(d=(1 << 64) - 1)
        with pytest.raises(OverflowError):
            dc.fetch_add(1, 0)

    def test_cas_count_one_per_transaction(self):
        dc = DualCounter()
        for _ in range(5):
            dc.fetch_add(1, 1)
        assert dc.cas_count == 5

    def test_halves_independent(self):
        dc = DualCounter()
        dc.fetch_add(7, 0)
        dc.fetch_add(0, 3)
        assert (dc.d, dc.s) == (7, 3)


class TestAtomicArray:
    def test_requires_int64(self):
        with pytest.raises(TypeError):
            AtomicArray(np.zeros(4, dtype=np.int32))

    def test_fetch_add_returns_previous(self):
        a = AtomicArray(np.zeros(4, dtype=np.int64))
        assert a.fetch_add(2, 5) == 0
        assert a.fetch_add(2, 3) == 5
        assert a.load(2) == 8

    def test_bulk_fetch_add_matches_scalar(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 50, size=200)
        deltas = rng.integers(1, 10, size=200)
        bulk = AtomicArray(np.zeros(50, dtype=np.int64))
        scalar = AtomicArray(np.zeros(50, dtype=np.int64))
        bulk_zero = bulk.bulk_fetch_add(idx, deltas)
        scalar_zero = np.zeros(200, dtype=bool)
        for i, (j, d) in enumerate(zip(idx.tolist(), deltas.tolist())):
            scalar_zero[i] = scalar.fetch_add(j, d) == 0
        assert np.array_equal(bulk.data, scalar.data)
        # first-writer-tracks semantics: same *set* of tracked slots
        assert set(idx[bulk_zero].tolist()) == set(idx[scalar_zero].tolist())
        # and each slot tracked exactly once
        assert len(idx[bulk_zero]) == len(set(idx[bulk_zero].tolist()))

    def test_bulk_fetch_add_empty(self):
        a = AtomicArray(np.zeros(4, dtype=np.int64))
        out = a.bulk_fetch_add(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert len(out) == 0

    def test_bulk_duplicate_indices_tracked_once(self):
        a = AtomicArray(np.zeros(4, dtype=np.int64))
        idx = np.array([1, 1, 1], dtype=np.int64)
        deltas = np.array([2, 3, 4], dtype=np.int64)
        was_zero = a.bulk_fetch_add(idx, deltas)
        assert a.load(1) == 9
        assert was_zero.sum() == 1
        assert was_zero[0]  # the first occurrence is the tracker

    def test_reset(self):
        a = AtomicArray(np.arange(5, dtype=np.int64))
        a.reset(np.array([1, 3]))
        assert a.data.tolist() == [0, 0, 2, 0, 4]
