"""Tests for the shared-access declaration registry and tracked scratch.

The registry (repro.verify.declarations) is the single source of truth the
dynamic ConflictDetector and the static lint pass both consume; the
recorder must refuse undeclared accesses at runtime exactly where the
static pass flags them at rest.  Tracked scratch (repro.memory.scratch)
backs the untracked-allocation pass's fix path.
"""

import gc

import numpy as np
import pytest

from repro.memory import MemoryTracker
from repro.memory.scratch import (
    install_ledger,
    tracked_empty,
    tracked_full,
    tracked_zeros,
    uninstall_ledger,
)
from repro.verify.conflicts import ConflictDetector
from repro.verify.declarations import (
    KERNELS,
    AccessDecl,
    UndeclaredAccessError,
    declared_modes,
    recorder_for,
    shared_vars,
)


class TestRegistry:
    def test_declared_modes_merge_per_array(self):
        modes = declared_modes("lp-clustering")
        assert modes["clusters"] == {"read", "atomic"}
        assert modes["favorites"] == {"write"}

    def test_shared_vars_maps_locals(self):
        assert shared_vars("lp-refinement")["part"] == "partition"
        assert shared_vars("lp-clustering")["vwgt"] == "vertex-weights"

    def test_every_kernel_mode_is_valid(self):
        for kernel, decls in KERNELS.items():
            for d in decls:
                assert d.mode in ("read", "write", "atomic"), (kernel, d)

    def test_invalid_mode_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown access mode"):
            AccessDecl("x", "volatile")


class TestRecorder:
    def test_declared_accesses_forward_to_detector(self):
        det = ConflictDetector()
        det.begin_region("r")
        det.current_tid = 0
        rec = recorder_for(det, "lp-clustering")
        rec.read("clusters", [1, 2])
        rec.atomic("cluster-weights", [0])
        rec.write("favorites", [3])
        det.current_tid = None
        det.end_region()
        assert det.clean
        assert det.accesses_recorded == 4

    def test_undeclared_array_refused(self):
        rec = recorder_for(ConflictDetector(), "lp-clustering")
        with pytest.raises(UndeclaredAccessError, match="ratings-scratch"):
            rec.read("ratings-scratch", [0])

    def test_wrong_mode_refused(self):
        rec = recorder_for(ConflictDetector(), "lp-clustering")
        with pytest.raises(UndeclaredAccessError, match="cluster-weights"):
            rec.write("cluster-weights", [0])

    def test_unknown_kernel_refused(self):
        with pytest.raises(UndeclaredAccessError):
            recorder_for(None, "no-such-kernel")

    def test_detectorless_recorder_still_checks(self):
        rec = recorder_for(None, "lp-refinement")
        assert not rec.active
        rec.atomic("partition", [0])  # declared: fine, records nothing
        with pytest.raises(UndeclaredAccessError):
            rec.write("partition", [0])


class TestTrackedScratch:
    def setup_method(self):
        uninstall_ledger()

    def teardown_method(self):
        uninstall_ledger()

    def test_no_ledger_plain_numpy(self):
        arr = tracked_empty(100, np.int64, name="x")
        assert arr.shape == (100,) and arr.dtype == np.int64

    def test_charges_and_frees_with_array_lifetime(self):
        tracker = MemoryTracker()
        install_ledger(tracker)
        arr = tracked_zeros(1000, np.int64, name="scratch-buf")
        assert tracker.current_bytes == arr.nbytes
        assert tracker.peak_bytes >= 8000
        del arr
        gc.collect()
        assert tracker.current_bytes == 0

    def test_full_and_values(self):
        tracker = MemoryTracker()
        install_ledger(tracker)
        arr = tracked_full(10, 7, np.int64, name="f")
        assert arr.tolist() == [7] * 10
        assert tracker.current_bytes == 80

    def test_uninstall_stops_charging(self):
        tracker = MemoryTracker()
        install_ledger(tracker)
        uninstall_ledger()
        _ = tracked_empty(1000, np.int64)
        assert tracker.current_bytes == 0
