"""Metamorphic tests over partition metrics (obs satellite).

Three relations that must hold for *any* graph and *any* partition, checked
with hypothesis sweeps over generator graphs and seeds:

1. **Relabeling invariance** -- permuting block IDs changes neither the cut
   nor the imbalance (block weights are permuted, their multiset is not).
2. **Disjoint-union additivity** -- the cut of ``G1 (+) G2`` under the
   concatenated partition is exactly ``cut(G1) + cut(G2)``.
3. **Uncut-edge contraction** -- contracting vertex groups that are
   connected by *uncut* (intra-block) edges preserves the cut exactly (and
   thus can never increase it: the monotonicity the multilevel scheme
   relies on when projecting a coarse partition to a finer level).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import PartitionedGraph
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph

FAMILIES = ("er", "weblike", "rgg2d", "ba", "kmer")


def make_graph(family: str, n: int, seed: int) -> CSRGraph:
    if family == "er":
        return gen.er(n, avg_degree=6.0, seed=seed)
    if family == "weblike":
        return gen.weblike(n, avg_degree=6.0, seed=seed)
    if family == "rgg2d":
        return gen.rgg2d(n, avg_degree=6.0, seed=seed)
    if family == "ba":
        return gen.ba(n, m_attach=3, seed=seed)
    if family == "kmer":
        return gen.kmer(n, degree=4, seed=seed)
    raise KeyError(family)


def random_partition(n: int, k: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, k, size=n).astype(np.int32)


def disjoint_union(g1: CSRGraph, g2: CSRGraph) -> CSRGraph:
    """``G1 (+) G2`` with ``G2``'s vertex IDs shifted by ``g1.n``."""
    indptr = np.concatenate([g1.indptr, g1.indptr[-1] + g2.indptr[1:]])
    adjncy = np.concatenate([g1.adjncy, g2.adjncy + g1.n])
    adjwgt = np.concatenate([np.asarray(g1.adjwgt), np.asarray(g2.adjwgt)])
    vwgt = np.concatenate([np.asarray(g1.vwgt), np.asarray(g2.vwgt)])
    return CSRGraph(indptr, adjncy, adjwgt, vwgt)


def contract_clusters(
    g: CSRGraph, clusters: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Pure-numpy reference contraction; returns (coarse, fine_to_coarse).

    Parallel coarse edges are merged with summed weights; intra-cluster
    edges are dropped -- the same semantics as the production contraction
    kernels, kept independent of them on purpose (metamorphic oracle).
    """
    _, dense = np.unique(clusters, return_inverse=True)
    nc = int(dense.max()) + 1 if len(dense) else 0
    src = np.repeat(np.arange(g.n, dtype=np.int64), g.degrees)
    cs, cd = dense[src], dense[g.adjncy]
    keep = cs != cd
    key = cs[keep] * np.int64(nc) + cd[keep]
    uniq, inv = np.unique(key, return_inverse=True)
    wagg = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(wagg, inv, np.asarray(g.adjwgt)[keep])
    csrc = (uniq // nc).astype(np.int64)
    cdst = (uniq % nc).astype(np.int64)
    counts = np.bincount(csrc, minlength=nc)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    vw = np.zeros(nc, dtype=np.int64)
    np.add.at(vw, dense, np.asarray(g.vwgt))
    return CSRGraph(indptr, cdst, wagg, vw), dense


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


# --------------------------------------------------------------------- #
# 1. block-ID relabeling invariance
# --------------------------------------------------------------------- #
@given(
    family=st.sampled_from(FAMILIES),
    n=st.integers(16, 250),
    seed=st.integers(0, 10_000),
    k=st.integers(2, 9),
    perm_seed=st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_cut_and_imbalance_invariant_under_relabeling(
    family, n, seed, k, perm_seed
):
    g = make_graph(family, n, seed)
    part = random_partition(g.n, k, seed + 1)
    pg = PartitionedGraph(g, k, part)
    perm = np.random.default_rng(perm_seed).permutation(k).astype(np.int32)
    pg2 = PartitionedGraph(g, k, perm[part])

    assert pg2.cut_weight() == pg.cut_weight()
    assert pg2.imbalance() == pytest.approx(pg.imbalance())
    assert sorted(pg2.block_weights.tolist()) == sorted(
        pg.block_weights.tolist()
    )


# --------------------------------------------------------------------- #
# 2. disjoint-union additivity
# --------------------------------------------------------------------- #
@given(
    f1=st.sampled_from(FAMILIES),
    f2=st.sampled_from(FAMILIES),
    n1=st.integers(16, 150),
    n2=st.integers(16, 150),
    seed=st.integers(0, 10_000),
    k=st.integers(2, 9),
)
@settings(max_examples=30, deadline=None)
def test_cut_additive_under_disjoint_union(f1, f2, n1, n2, seed, k):
    g1 = make_graph(f1, n1, seed)
    g2 = make_graph(f2, n2, seed + 7)
    p1 = random_partition(g1.n, k, seed + 1)
    p2 = random_partition(g2.n, k, seed + 2)
    cut1 = PartitionedGraph(g1, k, p1).cut_weight()
    cut2 = PartitionedGraph(g2, k, p2).cut_weight()

    gu = disjoint_union(g1, g2)
    gu.validate()
    pu = PartitionedGraph(gu, k, np.concatenate([p1, p2]))
    assert pu.cut_weight() == cut1 + cut2
    # vertex weights are additive too, so block weights add component-wise
    assert np.array_equal(
        pu.block_weights,
        PartitionedGraph(g1, k, p1).block_weights
        + PartitionedGraph(g2, k, p2).block_weights,
    )


# --------------------------------------------------------------------- #
# 3. contracting uncut edges preserves the cut
# --------------------------------------------------------------------- #
@given(
    family=st.sampled_from(FAMILIES),
    n=st.integers(16, 200),
    seed=st.integers(0, 10_000),
    k=st.integers(2, 6),
    merge_fraction=st.floats(0.0, 1.0),
)
@settings(max_examples=30, deadline=None)
def test_cut_preserved_under_uncut_edge_contraction(
    family, n, seed, k, merge_fraction
):
    g = make_graph(family, n, seed)
    part = random_partition(g.n, k, seed + 1)
    fine_cut = PartitionedGraph(g, k, part).cut_weight()

    # merge a random subset of *uncut* edges (endpoints in the same block)
    rng = np.random.default_rng(seed + 2)
    src = np.repeat(np.arange(g.n, dtype=np.int64), g.degrees)
    intra = np.flatnonzero((part[src] == part[g.adjncy]) & (src < g.adjncy))
    uf = _UnionFind(g.n)
    for ei in intra.tolist():
        if rng.random() < merge_fraction:
            uf.union(int(src[ei]), int(g.adjncy[ei]))
    clusters = np.array([uf.find(u) for u in range(g.n)], dtype=np.int64)

    coarse, fine_to_coarse = contract_clusters(g, clusters)
    coarse.validate()
    # each cluster is connected through intra-block edges, so all members
    # share a block; project the partition to the coarse graph
    coarse_part = np.zeros(coarse.n, dtype=np.int32)
    coarse_part[fine_to_coarse] = part
    coarse_cut = PartitionedGraph(coarse, k, coarse_part).cut_weight()

    assert coarse_cut == fine_cut
    # total vertex weight is conserved by contraction
    assert coarse.total_vertex_weight == g.total_vertex_weight
