"""Tier-1 perf smoke guard for the vectorized decode path (ISSUE 1).

Compressed chunk traversal must stay within 15x of the raw CSR gather on a
fixed weblike instance.  The seed's per-vertex scalar decode sat at
50-100x, so this guard fails loudly if a future change silently reroutes
traversal back through a Python-per-vertex loop; the vectorized bulk path
measures ~10x on an idle machine, leaving headroom for timer noise (both
sides are best-of-5 on the same interpreter).
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.access import chunk_adjacency
from repro.graph.compressed import compress_graph
from repro.graph.generators import weblike

MAX_SLOWDOWN = 15.0


def _best_of(fn, reps: int = 5) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_compressed_traversal_within_envelope():
    g = weblike(10_000, avg_degree=10, seed=42)
    cg = compress_graph(g)
    order = np.random.default_rng(0).permutation(g.n).astype(np.int64)
    chunks = np.array_split(order, 16)

    def scan(graph):
        for c in chunks:
            chunk_adjacency(graph, c)

    scan(g)  # warm both paths (allocator, caches)
    scan(cg)
    t_csr = _best_of(lambda: scan(g))
    t_cmp = _best_of(lambda: scan(cg))
    slowdown = t_cmp / t_csr
    assert slowdown <= MAX_SLOWDOWN, (
        f"compressed traversal {slowdown:.1f}x CSR "
        f"(csr {t_csr * 1e3:.2f} ms, compressed {t_cmp * 1e3:.2f} ms); "
        f"did a change reintroduce a per-vertex decode loop?"
    )
