"""Regenerate the golden span tree for tests/test_trace_export.py.

Usage::

    PYTHONPATH=src python tests/data/regen_golden_trace.py

The golden captures span *names and nesting only* (no timings, no byte
counts), so it is stable across machines as long as the pipeline structure
and the seeded mini-run are unchanged.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from test_trace_export import GOLDEN, mini_run  # noqa: E402


def main() -> None:
    tree = mini_run().trace.span_tree()
    GOLDEN.write_text(json.dumps(tree, indent=1) + "\n")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    main()
