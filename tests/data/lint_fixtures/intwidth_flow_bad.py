"""Flow-sensitive width cases that must be flagged.

A guard inside one branch does not dominate the merge point, and a
reassignment back to a wide dtype kills an earlier guard.
"""

import numpy as np


def guard_only_one_branch(ids, flip):
    wide = np.asarray(ids, dtype=np.int64)
    if flip:
        assert wide.max() <= np.iinfo(np.int32).max
    return wide.astype(np.int32)  # IW002: guard does not dominate


def narrowing_after_merge(n, flip):
    if flip:
        src = np.empty(64, dtype=np.int64)
    else:
        src = np.empty(64, dtype=np.int64)
    dst = np.zeros(64, dtype=np.int32)
    dst[0] = src[1]  # IW001: both paths carry int64 into an int32 store
    return dst
