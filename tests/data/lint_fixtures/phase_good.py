"""Known-good phase discipline: vocabulary names, with-block spans."""


def drives_phases(ctx, tracer, two_phase):
    phase_name = "clustering-2p" if two_phase else "clustering-classic"
    with ctx.phase("coarsening"):
        for rnd in range(3):
            with tracer.span(f"{phase_name}-round{rnd}"):
                pass
    with ctx.phase("refinement-level3"):
        pass
