"""Known-bad dispatch: parallel work with no access declarations at all."""


def undeclared_kernel(runtime, sched, out):
    total = 0
    for _tid, chunk in runtime.execute(sched):  # PA004: no recorder bound
        out[chunk] = 1
        total += len(chunk)
    return total
