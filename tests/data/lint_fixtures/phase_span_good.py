"""Known-good span protocol: every opened span closes on every path."""


def with_block_span(ctx):
    with ctx.phase("coarsening"):
        pass


def manual_span_closed_everywhere(tracker, flip):
    # repro-lint: ignore[PH002] -- fixture exercises the PH004 state machine
    span = tracker.phase("refinement")
    # repro-lint: ignore[PH002] -- fixture exercises the PH004 state machine
    span.__enter__()
    if flip:
        span.__exit__(None, None, None)
        return 1
    span.__exit__(None, None, None)
    return 0


def never_opened(tracker):
    # repro-lint: ignore[PH002] -- fixture exercises the PH004 state machine
    span = tracker.phase("coarsening")
    return span
