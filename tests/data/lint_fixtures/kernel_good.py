"""Known-good parallel kernel: every access matches its declaration."""

import numpy as np

from repro.verify.declarations import recorder_for


def good_kernel(det, runtime, sched, clusters, cluster_weights, vwgt):
    rec = recorder_for(det, "lp-clustering")
    for _tid, chunk in runtime.execute(sched):
        nbrs = chunk
        if rec.active:
            rec.read("clusters", nbrs)
            rec.read("vertex-weights", chunk)
        moved = chunk[clusters[chunk] != 0]
        if rec.active:
            rec.atomic("clusters", moved)
            rec.atomic("cluster-weights", moved)
    return clusters


def helper_shares_module_kernel(rec, part):
    # helpers extracted from the kernel resolve to the module's binding
    rec.atomic("clusters", np.arange(4))
    return part
