"""Known-good narrowing: every cast sits behind an asserted bound."""

import numpy as np


def guarded_cast(n, ids):
    wide = np.asarray(ids, dtype=np.int64)
    assert wide.max() <= np.iinfo(np.int32).max
    return wide.astype(np.int32)


def widening_is_fine(n):
    small = np.zeros(64, dtype=np.int32)
    big = np.empty(64, dtype=np.int64)
    big[0] = small[1]  # widening store: never a finding
    return big.astype(np.int64)
