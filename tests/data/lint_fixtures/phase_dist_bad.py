"""Known-bad distributed phase discipline: off-vocabulary dist names."""


def bad_dist_phases(tracer):
    with tracer.phase("dist-partion"):  # PH001: typo not in KNOWN_PHASES
        with tracer.span("ghost-xchg-rank0"):  # PH001: wrong spelling
            pass
