"""Known-good kernel sub-phase spans: the bulk-kernel vocabulary added to
KNOWN_PHASES, spelled exactly, including per-round suffixes that
``normalize_phase`` strips."""


def good_kernel_spans(ktracer, rnd):
    with ktracer.span("contraction-aggregate"):
        pass
    with ktracer.span("gain-table-build"):
        pass
    with ktracer.span(f"contraction-aggregate-round{rnd}"):
        pass
