"""Known-bad parallel kernel: one of each parallel-access violation."""

from repro.verify.declarations import recorder_for


def bad_kernel(det, runtime, sched, clusters, vwgt, scratch):
    rec = recorder_for(det, "lp-clustering")
    for _tid, chunk in runtime.execute(sched):
        rec.read("ratings-scratch", chunk)  # PA001: never declared
        rec.write("clusters", chunk)  # PA002: declared read/atomic only
        det.record_write("cluster-weights", chunk)  # PA002 via direct call
        vwgt[chunk] = 0  # PA003: vertex-weights is declared read-only
    return clusters


def bad_binding(det):
    rec = recorder_for(det, "no-such-kernel")  # PA005: unknown key
    return rec
