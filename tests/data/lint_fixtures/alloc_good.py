"""Known-good allocations: tracked constructors, ledger charges, O(1) scratch."""

import numpy as np

from repro.memory.scratch import tracked_empty, tracked_zeros


def uses_tracked(n):
    buf = tracked_empty(n, np.int64, name="fixture-buf")
    acc = tracked_zeros(n, np.int64, name="fixture-acc")
    return buf, acc


def charges_ledger(tracker, n):
    buf = np.empty(n, dtype=np.int64)
    tracker.alloc("fixture-buf", buf.nbytes, "scratch")
    return buf


def small_scratch():
    slots = np.zeros(8, dtype=np.int64)  # constant O(1) size: exempt
    grid = np.empty((4, 16), dtype=np.int64)  # 64 elements: still exempt
    return slots, grid
