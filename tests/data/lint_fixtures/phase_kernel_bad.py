"""Known-bad kernel sub-phase spans: names one typo away from the bulk
kernel vocabulary (``contraction-aggregate``, ``gain-table-build``) must
still be PH001 errors -- extending KNOWN_PHASES must not loosen the gate."""


def bad_kernel_spans(ktracer):
    with ktracer.span("contraction-agregate"):  # PH001: typo
        pass
    with ktracer.span("gain-table-built"):  # PH001: typo
        pass
    with ktracer.span("gain-table-build-fast"):  # PH001: invented variant
        pass
