"""Known-bad buffer lifetimes: phase-local, escaping and opaque buffers."""

import numpy as np

from repro.some.other import opaque_sink


def phase_local_untracked(n):
    buf = np.empty(n, dtype=np.int64)  # BL001: stays local, never charged
    buf[:] = 0
    return int(buf.sum())


def escaping_untracked(n):
    out = np.zeros(n, dtype=np.int64)  # BL002: escapes via return
    return out


def escapes_into_attribute(state, n):
    scratch = np.empty(n, dtype=np.int64)  # BL002: stored on an object
    state.scratch = scratch


def unknown_fate(n):
    buf = np.zeros(n, dtype=np.int64)  # BL003: handed to an opaque callee
    opaque_sink(buf)
