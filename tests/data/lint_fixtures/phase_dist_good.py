"""Known-good distributed phase discipline: dist vocabulary + suffixes."""


def drives_dist_phases(tracer, hierarchy):
    with tracer.phase("dist-partition"):
        with tracer.phase("dist-coarsening"):
            for level in range(2):
                with tracer.phase(f"dist-lp-level{level}", level=level):
                    for rnd in range(3):
                        with tracer.span(f"dist-lp-round{rnd}", level=level):
                            with tracer.span("ghost-exchange", level=level):
                                pass
                with tracer.phase(f"dist-contract-level{level}", level=level):
                    pass
        with tracer.phase("dist-refinement"):
            with tracer.phase("dist-refinement-level0", level=0):
                with tracer.span("dist-rebalance", level=0):
                    pass
