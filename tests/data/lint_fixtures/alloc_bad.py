"""Known-bad allocations: input-sized buffers the ledger never sees."""

import numpy as np


def untracked(n):
    buf = np.empty(n, dtype=np.int64)  # UA001
    return buf


def untracked_bytes(n):
    blob = bytearray(n)  # UA001
    return blob
