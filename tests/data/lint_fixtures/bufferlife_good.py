"""Known-good buffer lifetimes: tracked everywhere, clean under all passes."""

import numpy as np

from repro.memory.scratch import tracked_empty, tracked_zeros


def phase_local_tracked(n):
    # tracked scratch: charged to the ledger, freed when collected
    buf = tracked_empty(n, np.int64, name="fixture-local")
    buf[:] = 0
    return int(buf.sum())


def escaping_tracked(n):
    # escaping is fine when the buffer is tracked: the charge follows it
    out = tracked_zeros(n, np.int64, name="fixture-out")
    return out


def bulk_charged(tracker, n):
    # function-level region charge covers every allocation inside
    buf = np.empty(n, dtype=np.int64)
    tracker.alloc("fixture-bulk", buf.nbytes, "scratch")
    return buf


def small_fixed():
    # constant O(1) sizes are exempt from lifetime discipline
    slots = np.zeros(8, dtype=np.int64)
    return int(slots[0])
