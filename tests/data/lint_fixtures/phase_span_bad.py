"""Known-bad span protocol: open spans leak through an exit path."""


def early_return_leaks(tracker, flip):
    # repro-lint: ignore[PH002] -- fixture exercises the PH004 state machine
    span = tracker.phase("refinement")
    # repro-lint: ignore[PH002] -- fixture exercises the PH004 state machine
    span.__enter__()  # PH004: the flip path returns without __exit__
    if flip:
        return 1
    span.__exit__(None, None, None)
    return 0


def never_closed(tracker):
    # repro-lint: ignore[PH002] -- fixture exercises the PH004 state machine
    span = tracker.phase("coarsening")
    # repro-lint: ignore[PH002] -- fixture exercises the PH004 state machine
    span.__enter__()  # PH004: no __exit__ on any path
    return span
