"""Known-bad narrowing: int64 IDs silently squeezed into int32."""

import numpy as np


def narrowing_store(n):
    wide = np.empty(64, dtype=np.int64)
    narrow = np.zeros(64, dtype=np.int32)
    narrow[0] = wide[3]  # IW001
    return narrow


def unguarded_cast(n):
    wide = np.arange(n, dtype=np.int64)
    return wide.astype(np.int32)  # IW002
