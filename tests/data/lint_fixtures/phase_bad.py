"""Known-bad phase discipline: off-vocabulary names, manual spans."""


def bad_phases(ctx, tracker, name_from_caller):
    with ctx.phase("coarsning"):  # PH001: typo not in KNOWN_PHASES
        pass
    span = tracker.phase("refinement")  # PH002: not a with-block
    span.__enter__()  # PH002: manual enter
    with ctx.phase(name_from_caller):  # PH003: dynamic name
        pass
