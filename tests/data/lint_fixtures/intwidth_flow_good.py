"""Flow-sensitive width cases that must stay clean.

The old line-ordered checker could not express these: a guard that
dominates the cast through branching, and a merge where the two sides
disagree (the join must yield *unknown*, not a false finding).
"""

import numpy as np


def guard_dominates_both_branches(ids, flip):
    wide = np.asarray(ids, dtype=np.int64)
    assert wide.max() <= np.iinfo(np.int32).max
    if flip:
        return wide.astype(np.int32)  # guarded: dominating assert
    return wide.astype(np.int32)  # guarded on this path too


def merge_makes_width_unknown(flip):
    if flip:
        buf = np.zeros(64, dtype=np.int64)
    else:
        buf = np.zeros(64, dtype=np.int32)
    # width differs across the merge -> joined to unknown, no finding
    return buf.astype(np.int32)


def loop_carried_width():
    acc = np.zeros(64, dtype=np.int64)
    for _ in range(3):
        acc = acc + 1
    assert acc.max() <= np.iinfo(np.int32).max
    return acc.astype(np.int32)
