"""Tests for memory report rendering (repro.memory.report)."""

from repro.memory import MemoryTracker
from repro.memory.report import MemoryReport, render_phase_breakdown


class TestMemoryReport:
    def test_from_tracker(self):
        t = MemoryTracker()
        with t.phase("a"):
            aid = t.alloc("x", 1000, "graph")
        t.free(aid)
        report = MemoryReport.from_tracker(t)
        assert report.peak_bytes == 1000
        assert report.phase_peaks["a"] == 1000
        assert report.dominant_category() == "graph"

    def test_dominant_category_empty(self):
        assert MemoryReport.from_tracker(MemoryTracker()).dominant_category() == "none"

    def test_dominant_category_picks_largest(self):
        t = MemoryTracker()
        t.alloc("a", 10, "small")
        t.alloc("b", 1000, "big")
        assert MemoryReport.from_tracker(t).dominant_category() == "big"


class TestRenderPhaseBreakdown:
    def test_renders_tree(self):
        t = MemoryTracker()
        with t.phase("partition"):
            with t.phase("coarsening"):
                aid = t.alloc("maps", 4096, "clustering")
                t.free(aid)
            with t.phase("refinement"):
                aid = t.alloc("table", 2048, "gain-table")
                t.free(aid)
        out = render_phase_breakdown(t)
        assert "partition" in out
        assert "coarsening" in out
        assert "4.0 KiB" in out
        assert "clustering" in out  # category appears in the breakdown

    def test_max_depth_limits_output(self):
        t = MemoryTracker()
        with t.phase("a"):
            with t.phase("b"):
                with t.phase("c"):
                    t.alloc("x", 10)
        deep = render_phase_breakdown(t, max_depth=3)
        shallow = render_phase_breakdown(t, max_depth=1)
        assert "c" in deep.split("peak memory")[1]
        assert len(shallow.splitlines()) < len(deep.splitlines())

    def test_empty_tracker(self):
        out = render_phase_breakdown(MemoryTracker())
        assert "peak memory" in out
