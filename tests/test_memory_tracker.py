"""Unit tests for the allocation ledger (repro.memory.tracker)."""

import pytest

from repro.memory.tracker import PAGE_SIZE, MemoryTracker, NullTracker


class TestBasicAccounting:
    def test_alloc_free_roundtrip(self):
        t = MemoryTracker()
        aid = t.alloc("buf", 1000)
        assert t.current_bytes == 1000
        t.free(aid)
        assert t.current_bytes == 0

    def test_peak_tracks_maximum(self):
        t = MemoryTracker()
        a = t.alloc("a", 100)
        b = t.alloc("b", 200)
        t.free(a)
        c = t.alloc("c", 50)
        assert t.peak_bytes == 300
        t.free(b)
        t.free(c)
        assert t.peak_bytes == 300
        assert t.current_bytes == 0

    def test_negative_size_rejected(self):
        t = MemoryTracker()
        with pytest.raises(ValueError):
            t.alloc("bad", -1)

    def test_double_free_raises(self):
        t = MemoryTracker()
        aid = t.alloc("x", 10)
        t.free(aid)
        with pytest.raises(KeyError):
            t.free(aid)

    def test_resize(self):
        t = MemoryTracker()
        aid = t.alloc("grow", 100)
        t.resize(aid, 500)
        assert t.current_bytes == 500
        assert t.peak_bytes == 500
        t.resize(aid, 50)
        assert t.current_bytes == 50
        assert t.peak_bytes == 500

    def test_breakdown_by_category(self):
        t = MemoryTracker()
        t.alloc("g", 100, "graph")
        t.alloc("c", 200, "clustering")
        t.alloc("c2", 300, "clustering")
        assert t.breakdown() == {"graph": 100, "clustering": 500}

    def test_peak_breakdown_snapshot(self):
        t = MemoryTracker()
        a = t.alloc("a", 1000, "graph")
        t.free(a)
        t.alloc("b", 10, "aux")
        assert t.peak_breakdown == {"graph": 1000}


class TestOvercommit:
    def test_overcommit_charges_touched_plus_page(self):
        t = MemoryTracker()
        aid = t.alloc("big", 10**9, "graph", overcommit=True)
        assert t.current_bytes == PAGE_SIZE
        t.touch(aid, 5000)
        assert t.current_bytes == 5000 + PAGE_SIZE

    def test_touch_is_monotone(self):
        t = MemoryTracker()
        aid = t.alloc("big", 10**6, overcommit=True)
        t.touch(aid, 5000)
        t.touch(aid, 100)  # shrink is a no-op (pages stay mapped)
        assert t.current_bytes == 5000 + PAGE_SIZE

    def test_touch_beyond_reservation_rejected(self):
        t = MemoryTracker()
        aid = t.alloc("big", 1000, overcommit=True)
        with pytest.raises(ValueError):
            t.touch(aid, 2000)

    def test_touch_ordinary_allocation_rejected(self):
        t = MemoryTracker()
        aid = t.alloc("plain", 100)
        with pytest.raises(ValueError):
            t.touch(aid, 50)

    def test_charge_capped_at_virtual_size(self):
        t = MemoryTracker()
        aid = t.alloc("tight", 1000, overcommit=True)
        t.touch(aid, 1000)
        # touched + page would exceed the reservation; charge caps there
        assert t.current_bytes == 1000

    def test_resize_overcommitted_rejected(self):
        t = MemoryTracker()
        aid = t.alloc("oc", 100, overcommit=True)
        with pytest.raises(ValueError):
            t.resize(aid, 50)


class TestPhases:
    def test_phase_peaks_are_scoped(self):
        t = MemoryTracker()
        with t.phase("a"):
            x = t.alloc("x", 100)
            t.free(x)
        with t.phase("b"):
            t.alloc("y", 50)
        assert t.phase_peak("a") == 100
        assert t.phase_peak("b") == 50

    def test_nested_phases_aggregate(self):
        t = MemoryTracker()
        with t.phase("outer"):
            with t.phase("inner1"):
                a = t.alloc("a", 100)
                t.free(a)
            with t.phase("inner2"):
                t.alloc("b", 300)
        assert t.phase_peak("outer") == 300
        assert t.phase_peak("outer/inner1") == 100
        assert t.phase_peak("outer/inner2") == 300

    def test_live_allocation_attributed_to_later_phase(self):
        # allocations surviving across phases count in subsequent peaks
        t = MemoryTracker()
        t.alloc("persistent", 1000)
        with t.phase("later"):
            pass
        assert t.phase_peak("later") == 1000

    def test_unknown_phase_peak_is_zero(self):
        t = MemoryTracker()
        assert t.phase_peak("nope") == 0

    def test_current_phase_path(self):
        t = MemoryTracker()
        assert t.current_phase == ""
        with t.phase("a"):
            with t.phase("b"):
                assert t.current_phase == "a/b"
            assert t.current_phase == "a"


class TestLeakDetection:
    def test_assert_empty_passes_when_clean(self):
        t = MemoryTracker()
        aid = t.alloc("x", 10)
        t.free(aid)
        t.assert_empty()

    def test_assert_empty_raises_on_leak(self):
        t = MemoryTracker()
        t.alloc("leaky", 10)
        with pytest.raises(AssertionError, match="leaky"):
            t.assert_empty()

    def test_assert_empty_honours_ignored_categories(self):
        t = MemoryTracker()
        t.alloc("g", 10, "graph")
        t.assert_empty(ignore_categories=("graph",))


class TestNullTracker:
    def test_null_tracker_records_nothing(self):
        t = NullTracker()
        aid = t.alloc("x", 10**12)
        t.touch(aid, 10)
        t.resize(aid, 20)
        t.free(aid)
        assert t.current_bytes == 0
        assert t.peak_bytes == 0
