"""Tests for the benchmark harness (instances, aggregation, profiles)."""

import numpy as np
import pytest

from repro.bench.harness import (
    RunRecord,
    aggregate,
    geometric_mean,
    harmonic_mean,
    relative_to,
    run_matrix,
)
from repro.bench.instances import SEM_GRAPHS, SET_A, SET_B, Instance, load_instance
from repro.bench.profiles import performance_profile, profile_summary
from repro.bench.reporting import fmt_bytes, render_series, render_table, render_waterfall


class TestInstances:
    def test_all_instances_buildable(self):
        for inst in (*SET_A, *SET_B, *SEM_GRAPHS):
            g = inst.make()
            assert g.n > 0 and g.m > 0

    def test_load_instance_cached(self):
        a = load_instance("fem-grid")
        b = load_instance("fem-grid")
        assert a is b

    def test_unknown_instance(self):
        with pytest.raises(KeyError):
            load_instance("nope")

    def test_set_b_graphs_are_weblike(self):
        for inst in SET_B:
            g = inst.make()
            assert g.max_degree > 5 * g.degrees.mean()


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([5]) == pytest.approx(5.0)

    def test_harmonic_mean(self):
        assert harmonic_mean([1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 6]) == pytest.approx(3.0)
        assert harmonic_mean([]) == 0.0

    def test_zero_values_skipped(self):
        assert geometric_mean([0, 10]) == pytest.approx(10.0)


def _rec(alg, inst, k, seed, cut, **kw):
    defaults = dict(
        balanced=True,
        imbalance=0.0,
        wall_seconds=1.0,
        modeled_seconds=1.0,
        peak_bytes=100,
    )
    defaults.update(kw)
    return RunRecord(alg, inst, k, seed, cut, **defaults)


class TestAggregation:
    def test_mean_over_seeds(self):
        records = [
            _rec("a", "g1", 4, 0, 10),
            _rec("a", "g1", 4, 1, 20),
            _rec("a", "g2", 4, 0, 5),
        ]
        agg = aggregate(records, "cut")
        assert agg[("a", "g1", 4)] == 15.0
        assert agg[("a", "g2", 4)] == 5.0

    def test_relative_to_baseline(self):
        agg = {
            ("base", "g1", 4): 10.0,
            ("base", "g2", 4): 100.0,
            ("x", "g1", 4): 20.0,
            ("x", "g2", 4): 50.0,
        }
        rel = relative_to(agg, "base")
        assert rel["base"] == pytest.approx(1.0)
        assert rel["x"] == pytest.approx(1.0)  # geo mean of 2.0 and 0.5

    def test_run_matrix_covers_product(self):
        calls = []

        def runner(cfg, inst, k, seed):
            calls.append((cfg.name, inst.name, k, seed))
            return _rec(cfg.name, inst.name, k, seed, 1)

        from repro.core import config as C

        insts = [SET_A[0], SET_A[1]]
        run_matrix([C.terapart()], insts, [2, 4], [0, 1], runner=runner)
        assert len(calls) == 8


class TestPerformanceProfiles:
    def test_best_algorithm_fraction(self):
        cuts = {
            "a": {"g1": 10.0, "g2": 10.0},
            "b": {"g1": 20.0, "g2": 5.0},
        }
        taus, profiles = performance_profile(cuts)
        assert profiles["a"][0] == pytest.approx(0.5)
        assert profiles["b"][0] == pytest.approx(0.5)
        # at tau=2 both cover everything
        assert profiles["a"][-1] == pytest.approx(1.0)
        assert profiles["b"][-1] == pytest.approx(1.0)

    def test_missing_instances_never_covered(self):
        cuts = {"a": {"g1": 10.0, "g2": 10.0}, "b": {"g1": 10.0}}
        taus, profiles = performance_profile(cuts)
        assert profiles["b"][-1] == pytest.approx(0.5)

    def test_zero_cuts_handled(self):
        cuts = {"a": {"g1": 0.0}, "b": {"g1": 5.0}}
        taus, profiles = performance_profile(cuts)
        assert profiles["a"][0] == pytest.approx(1.0)

    def test_summary_fields(self):
        cuts = {"a": {"g1": 10.0}, "b": {"g1": 10.5}}
        taus, profiles = performance_profile(cuts)
        s = profile_summary(taus, profiles)
        assert s["a"]["best"] == 1.0
        assert s["b"]["within_1.05"] == 1.0
        assert 0 < s["b"]["auc"] <= 1.0


class TestReporting:
    def test_render_table(self):
        out = render_table(["a", "bb"], [(1, 2.5), (3, 4.0)], title="t")
        assert "t" in out and "bb" in out and "2.50" in out

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2048) == "2.00 KiB"
        assert "GiB" in fmt_bytes(3 * 1024**3)

    def test_render_series(self):
        out = render_series("s", [1, 2], [0.5, 1.5])
        assert "1: 0.50" in out

    def test_render_waterfall(self):
        out = render_waterfall([("a", 100.0), ("b", 50.0)])
        lines = out.splitlines()
        assert lines[0].count("#") > lines[1].count("#")
        assert render_waterfall([]) == "(empty)"
