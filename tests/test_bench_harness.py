"""Tests for the benchmark harness (instances, aggregation, profiles)."""

import numpy as np
import pytest

from repro.bench.harness import (
    RunRecord,
    aggregate,
    geometric_mean,
    harmonic_mean,
    relative_to,
    run_matrix,
)
from repro.bench.instances import SEM_GRAPHS, SET_A, SET_B, Instance, load_instance
from repro.bench.profiles import performance_profile, profile_summary
from repro.bench.reporting import fmt_bytes, render_series, render_table, render_waterfall


class TestInstances:
    def test_all_instances_buildable(self):
        for inst in (*SET_A, *SET_B, *SEM_GRAPHS):
            g = inst.make()
            assert g.n > 0 and g.m > 0

    def test_load_instance_cached(self):
        a = load_instance("fem-grid")
        b = load_instance("fem-grid")
        assert a is b

    def test_unknown_instance(self):
        with pytest.raises(KeyError):
            load_instance("nope")

    def test_set_b_graphs_are_weblike(self):
        for inst in SET_B:
            g = inst.make()
            assert g.max_degree > 5 * g.degrees.mean()


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([5]) == pytest.approx(5.0)

    def test_harmonic_mean(self):
        assert harmonic_mean([1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 6]) == pytest.approx(3.0)
        assert harmonic_mean([]) == 0.0

    def test_zero_values_skipped(self):
        assert geometric_mean([0, 10]) == pytest.approx(10.0)

    def test_dropped_values_are_counted(self):
        """A legal cut == 0 must not vanish silently from the aggregate."""
        g = geometric_mean([0, 10])
        assert g.used == 1 and g.dropped == 1
        h = harmonic_mean([-1.0, 2.0, 6.0])
        assert h == pytest.approx(3.0)
        assert h.used == 2 and h.dropped == 1

    def test_no_drops_means_zero_count(self):
        g = geometric_mean([1.0, 100.0])
        assert g.used == 2 and g.dropped == 0

    def test_all_dropped(self):
        g = geometric_mean([0, -5])
        assert g == 0.0 and g.used == 0 and g.dropped == 2

    def test_annotate_surfaces_drops(self):
        assert "1 non-positive dropped" in geometric_mean([0, 10]).annotate()
        assert "dropped" not in geometric_mean([10.0]).annotate()

    def test_aggregate_stat_behaves_like_float(self):
        g = geometric_mean([1, 100])
        assert g * 2 == pytest.approx(20.0)
        assert isinstance(g + 1, float)


def _rec(alg, inst, k, seed, cut, **kw):
    defaults = dict(
        balanced=True,
        imbalance=0.0,
        wall_seconds=1.0,
        modeled_seconds=1.0,
        peak_bytes=100,
    )
    defaults.update(kw)
    return RunRecord(alg, inst, k, seed, cut, **defaults)


class TestAggregation:
    def test_mean_over_seeds(self):
        records = [
            _rec("a", "g1", 4, 0, 10),
            _rec("a", "g1", 4, 1, 20),
            _rec("a", "g2", 4, 0, 5),
        ]
        agg = aggregate(records, "cut")
        assert agg[("a", "g1", 4)] == 15.0
        assert agg[("a", "g2", 4)] == 5.0

    def test_relative_to_baseline(self):
        agg = {
            ("base", "g1", 4): 10.0,
            ("base", "g2", 4): 100.0,
            ("x", "g1", 4): 20.0,
            ("x", "g2", 4): 50.0,
        }
        rel = relative_to(agg, "base")
        assert rel["base"] == pytest.approx(1.0)
        assert rel["x"] == pytest.approx(1.0)  # geo mean of 2.0 and 0.5

    def test_run_matrix_covers_product(self):
        calls = []

        def runner(cfg, inst, k, seed):
            calls.append((cfg.name, inst.name, k, seed))
            return _rec(cfg.name, inst.name, k, seed, 1)

        from repro.core import config as C

        insts = [SET_A[0], SET_A[1]]
        run_matrix([C.terapart()], insts, [2, 4], [0, 1], runner=runner)
        assert len(calls) == 8

    def _runner(self, cfg, inst, k, seed):
        return _rec(cfg.name, inst.name, k, seed, 1)

    def test_progress_reports_completion_for_any_matrix_size(self, capsys):
        """Matrices not divisible by 10 still get a final summary line."""
        from repro.core import config as C

        run_matrix(
            [C.terapart()],
            [SET_A[0]],
            [2],
            [0, 1, 2],
            runner=self._runner,
            progress=True,
            rundb=False,
        )
        out = capsys.readouterr().out
        assert "[3/3] done in" in out
        assert "s/run" in out

    def test_progress_periodic_plus_final(self, capsys):
        from repro.core import config as C

        run_matrix(
            [C.terapart()],
            [SET_A[0]],
            [2],
            list(range(20)),
            runner=self._runner,
            progress=True,
            rundb=False,
        )
        out = capsys.readouterr().out
        assert "[10/20]" in out
        assert "[20/20] done in" in out
        # the final record is reported by the summary, not a periodic line
        assert out.count("[20/20]") == 1

    def test_run_matrix_appends_to_rundb(self, tmp_path):
        from repro.core import config as C
        from repro.obs.regress.rundb import RunDB

        db = RunDB(tmp_path / "runs.jsonl")
        run_matrix(
            [C.terapart()],
            [SET_A[0]],
            [2, 4],
            [0, 1],
            runner=self._runner,
            rundb=db,
            record_bench="unit",
            record_label="lbl",
        )
        recs = db.load()
        assert len(recs) == 4
        assert {r["bench"] for r in recs} == {"unit"}
        assert {r["label"] for r in recs} == {"lbl"}
        assert {r["run"]["k"] for r in recs} == {2, 4}
        assert all(r["config"]["name"] == "terapart" for r in recs)

    def test_run_matrix_rundb_disabled_by_default(self, monkeypatch, tmp_path):
        from repro.core import config as C

        monkeypatch.delenv("REPRO_RUNDB", raising=False)
        run_matrix([C.terapart()], [SET_A[0]], [2], [0], runner=self._runner)
        # no env var, no explicit db: nothing persisted anywhere

    def test_run_matrix_env_default_rundb(self, monkeypatch, tmp_path):
        from repro.core import config as C

        monkeypatch.setenv("REPRO_RUNDB", str(tmp_path / "envdb.jsonl"))
        run_matrix([C.terapart()], [SET_A[0]], [2], [0], runner=self._runner)
        from repro.obs.regress.rundb import RunDB

        assert len(RunDB(tmp_path / "envdb.jsonl").load()) == 1


class TestPerformanceProfiles:
    def test_best_algorithm_fraction(self):
        cuts = {
            "a": {"g1": 10.0, "g2": 10.0},
            "b": {"g1": 20.0, "g2": 5.0},
        }
        taus, profiles = performance_profile(cuts)
        assert profiles["a"][0] == pytest.approx(0.5)
        assert profiles["b"][0] == pytest.approx(0.5)
        # at tau=2 both cover everything
        assert profiles["a"][-1] == pytest.approx(1.0)
        assert profiles["b"][-1] == pytest.approx(1.0)

    def test_missing_instances_never_covered(self):
        cuts = {"a": {"g1": 10.0, "g2": 10.0}, "b": {"g1": 10.0}}
        taus, profiles = performance_profile(cuts)
        assert profiles["b"][-1] == pytest.approx(0.5)

    def test_zero_cuts_handled(self):
        cuts = {"a": {"g1": 0.0}, "b": {"g1": 5.0}}
        taus, profiles = performance_profile(cuts)
        assert profiles["a"][0] == pytest.approx(1.0)

    def test_summary_fields(self):
        cuts = {"a": {"g1": 10.0}, "b": {"g1": 10.5}}
        taus, profiles = performance_profile(cuts)
        s = profile_summary(taus, profiles)
        assert s["a"]["best"] == 1.0
        assert s["b"]["within_1.05"] == 1.0
        assert 0 < s["b"]["auc"] <= 1.0


class TestReporting:
    def test_render_table(self):
        out = render_table(["a", "bb"], [(1, 2.5), (3, 4.0)], title="t")
        assert "t" in out and "bb" in out and "2.50" in out

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2048) == "2.00 KiB"
        assert "GiB" in fmt_bytes(3 * 1024**3)

    def test_render_series(self):
        out = render_series("s", [1, 2], [0.5, 1.5])
        assert "1: 0.50" in out

    def test_render_waterfall(self):
        out = render_waterfall([("a", 100.0), ("b", 50.0)])
        lines = out.splitlines()
        assert lines[0].count("#") > lines[1].count("#")
        assert render_waterfall([]) == "(empty)"
