"""Tests for baselines and bootstrap classification (obs/regress/compare)."""

import pytest

from repro.obs.regress.compare import (
    BASELINE_SCHEMA,
    Baseline,
    CompareThresholds,
    capture_baseline,
    compare,
)
from repro.obs.regress.rundb import RUNDB_SCHEMA


def _rec(
    alg="terapart",
    inst="fem-grid",
    k=4,
    seed=0,
    cut=100.0,
    wall=1.0,
    peak=1000.0,
    balanced=True,
    imbalance=0.01,
    obs=None,
):
    return {
        "schema": RUNDB_SCHEMA,
        "kind": "partition",
        "bench": "smoke",
        "label": None,
        "recorded_unix": None,
        "env": {},
        "config": None,
        "run": {
            "algorithm": alg,
            "instance": inst,
            "k": k,
            "seed": seed,
            "cut": cut,
            "balanced": balanced,
            "imbalance": imbalance,
            "wall_seconds": wall,
            "modeled_seconds": wall,
            "peak_bytes": peak,
            "extra": {},
        },
        "obs": obs,
    }


def _matrix(scale_cut=1.0, scale_wall=1.0, scale_peak=1.0, **kw):
    """3 seeds x 2 instances with mild seed-to-seed spread."""
    recs = []
    for inst, base_cut in (("fem-grid", 100.0), ("web-small", 400.0)):
        for seed, jitter in ((0, 1.0), (1, 1.02), (2, 0.98)):
            recs.append(
                _rec(
                    inst=inst,
                    seed=seed,
                    cut=base_cut * jitter * scale_cut,
                    wall=1.0 * jitter * scale_wall,
                    peak=1000.0 * scale_peak,
                    **kw,
                )
            )
    return recs


THR = CompareThresholds(bootstrap_samples=300)


class TestBaseline:
    def test_capture_groups(self):
        base = capture_baseline(_matrix(), "b", timestamp=1.0)
        assert set(base.groups) == {
            "terapart|fem-grid|4",
            "terapart|web-small|4",
        }
        g = base.groups["terapart|fem-grid|4"]
        assert g["seeds"] == [0, 1, 2]
        assert g["metrics"]["cut"] == [100.0, 102.0, 98.0]
        assert g["balanced"] == [True, True, True]

    def test_save_load_roundtrip(self, tmp_path):
        base = capture_baseline(_matrix(), "b", env={"python": "3"})
        base.save(tmp_path / "b.json")
        loaded = Baseline.load(tmp_path / "b.json")
        assert loaded.name == "b"
        assert loaded.env == {"python": "3"}
        assert loaded.groups == base.groups

    def test_future_schema_rejected(self):
        with pytest.raises(ValueError, match="newer"):
            Baseline.from_dict({"schema": BASELINE_SCHEMA + 1})

    def test_non_partition_records_ignored(self):
        recs = _matrix() + [{"kind": "microbench", "run": {"x": 1}}]
        base = capture_baseline(recs, "b")
        assert len(base.groups) == 2


class TestClassification:
    def test_identical_runs_are_neutral(self):
        base = capture_baseline(_matrix(), "b")
        report = compare(base, _matrix(), thresholds=THR)
        assert not report.regressed
        for v in report.verdicts:
            assert v.classification == "neutral", v
            assert v.ratio == pytest.approx(1.0)
            assert v.ci_low <= 1.0 <= v.ci_high

    def test_regression_flagged(self):
        base = capture_baseline(_matrix(), "b")
        cand = _matrix(scale_wall=2.0, scale_peak=1.5)
        report = compare(base, cand, thresholds=THR)
        assert set(report.regressed_metrics) == {"wall_seconds", "peak_bytes"}
        wall = report.verdict_for("wall_seconds")
        assert wall.ratio == pytest.approx(2.0, rel=0.01)
        assert wall.ci_low > 1.25
        assert report.verdict_for("cut").classification == "neutral"

    def test_improvement_flagged(self):
        base = capture_baseline(_matrix(), "b")
        report = compare(base, _matrix(scale_peak=0.5), thresholds=THR)
        assert report.verdict_for("peak_bytes").classification == "improved"
        assert not report.regressed

    def test_noise_within_band_is_neutral(self):
        base = capture_baseline(_matrix(), "b")
        # +1% cut sits inside the 2% band
        report = compare(base, _matrix(scale_cut=1.01), thresholds=THR)
        assert report.verdict_for("cut").classification == "neutral"

    def test_bootstrap_deterministic(self):
        base = capture_baseline(_matrix(), "b")
        cand = _matrix(scale_wall=1.3)
        a = compare(base, cand, thresholds=THR)
        b = compare(base, cand, thresholds=THR)
        for va, vb in zip(a.verdicts, b.verdicts):
            assert (va.ci_low, va.ci_high) == (vb.ci_low, vb.ci_high)

    def test_missing_and_extra_keys(self):
        base = capture_baseline(_matrix(), "b")
        cand = [r for r in _matrix() if r["run"]["instance"] == "fem-grid"]
        report = compare(base, cand, thresholds=THR)
        assert report.keys_compared == ["terapart|fem-grid|4"]
        assert report.keys_missing == ["terapart|web-small|4"]


class TestZeroCuts:
    def test_zero_to_zero_counts_as_ratio_one(self):
        base = capture_baseline([_rec(cut=0.0, seed=s) for s in range(3)], "b")
        cand = [_rec(cut=0.0, seed=s) for s in range(3)]
        report = compare(base, cand, metrics=("cut",), thresholds=THR)
        v = report.verdict_for("cut")
        assert v.classification == "neutral"
        assert v.per_key["terapart|fem-grid|4"] == 1.0

    def test_lost_zero_baseline_forces_regressed(self):
        """A vanished perfect cut can't hide behind the geometric mean."""
        base = capture_baseline([_rec(cut=0.0, seed=s) for s in range(3)], "b")
        cand = [_rec(cut=7.0, seed=s) for s in range(3)]
        report = compare(base, cand, metrics=("cut",), thresholds=THR)
        v = report.verdict_for("cut")
        assert v.classification == "regressed"
        assert v.infinite_pairs == 1

    def test_candidate_reaching_zero_is_counted_dropped(self):
        base = capture_baseline(_matrix(), "b")
        cand = _matrix()
        for r in cand:
            if r["run"]["instance"] == "fem-grid":
                r["run"]["cut"] = 0.0
        report = compare(base, cand, metrics=("cut",), thresholds=THR)
        v = report.verdict_for("cut")
        assert v.dropped_pairs == 1
        assert v.n_keys == 2  # the dropped pair is still surfaced per-key


class TestImbalanceHardGate:
    def test_unbalanced_candidate_fails_gate(self):
        base = capture_baseline(_matrix(), "b")
        cand = _matrix()
        cand[0]["run"]["balanced"] = False
        cand[0]["run"]["imbalance"] = 0.09
        report = compare(base, cand, thresholds=THR)
        assert not report.gate.passed
        assert report.regressed  # even though every metric is neutral
        viol = report.gate.violations[0]
        assert viol["key"] == "terapart|fem-grid|4"
        assert viol["imbalance"] == 0.09

    def test_balanced_candidate_passes_gate(self):
        base = capture_baseline(_matrix(), "b")
        report = compare(base, _matrix(), thresholds=THR)
        assert report.gate.passed


def _service_rec(inst="fem-grid", seed=0, warm_over_full=0.05, p99=0.1,
                 cut_overhead=0.98):
    return {
        "schema": RUNDB_SCHEMA,
        "kind": "service",
        "bench": "service-smoke",
        "label": None,
        "recorded_unix": None,
        "env": {},
        "config": None,
        "run": {
            "algorithm": "serve-terapart",
            "instance": inst,
            "k": 8,
            "seed": seed,
            "requests": 16,
            "wall_seconds": 0.5,
            "p50_seconds": 0.001,
            "p99_seconds": p99,
            "warm_over_full": warm_over_full,
            "cut_overhead": cut_overhead,
        },
        "obs": None,
    }


class TestServiceKind:
    """The kinds parameter routes service records through the same
    baseline/compare machinery that gates partition runs."""

    def test_default_kinds_ignore_service_records(self):
        base = capture_baseline(_matrix() + [_service_rec()], "b")
        assert "serve-terapart|fem-grid|8" not in base.groups
        report = compare(base, _matrix() + [_service_rec()], thresholds=THR)
        assert report.keys_compared == sorted(
            {"terapart|fem-grid|4", "terapart|web-small|4"}
        )

    def test_service_baseline_capture(self):
        recs = [_service_rec(inst=i, seed=s)
                for i in ("fem-grid", "web-small") for s in range(2)]
        base = capture_baseline(
            recs, "svc", kinds=("service",),
            metrics=("p99_seconds", "warm_over_full", "cut_overhead"),
        )
        g = base.groups["serve-terapart|fem-grid|8"]
        assert g["seeds"] == [0, 1]
        assert g["metrics"]["warm_over_full"] == [0.05, 0.05]
        # no balanced flag on service records: defaults to balanced
        assert g["balanced"] == [True, True]

    def test_service_regression_detected(self):
        kw = dict(kinds=("service",),
                  metrics=("warm_over_full", "cut_overhead"))
        recs = [_service_rec(inst=i, seed=s)
                for i in ("fem-grid", "web-small") for s in range(2)]
        base = capture_baseline(recs, "svc", **kw)
        # warm starts degraded 10x: the gate must catch it
        worse = [_service_rec(inst=i, seed=s, warm_over_full=0.5)
                 for i in ("fem-grid", "web-small") for s in range(2)]
        report = compare(base, worse, kinds=("service",),
                         metrics=("warm_over_full",), thresholds=THR)
        assert report.verdict_for("warm_over_full").classification == (
            "regressed"
        )
        # unchanged candidate stays neutral
        ok = compare(base, recs, kinds=("service",),
                     metrics=("warm_over_full", "cut_overhead"),
                     thresholds=THR)
        assert not ok.regressed

    def test_missing_metric_groups_skipped(self):
        """A partition-metrics compare over service records yields no
        verdict rather than a KeyError."""
        recs = [_service_rec(seed=s) for s in range(2)]
        base = capture_baseline(recs, "svc", kinds=("service",),
                                metrics=("p99_seconds",))
        report = compare(base, recs, kinds=("service",), metrics=("cut",),
                         thresholds=THR)
        assert report.verdict_for("cut") is None
