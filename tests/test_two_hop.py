"""Tests for two-hop matching (coarsening progress on irregular graphs)."""

import numpy as np

from repro.core.coarsening.lp_clustering import ClusteringResult
from repro.core.coarsening.two_hop import two_hop_match
from repro.graph import generators as gen


def make_result(n, clusters, vwgt, favorites):
    clusters = np.asarray(clusters, dtype=np.int64)
    weights = np.zeros(n, dtype=np.int64)
    np.add.at(weights, clusters, vwgt)
    return ClusteringResult(
        clusters=clusters,
        cluster_weights=weights,
        num_clusters=len(np.unique(clusters)),
        favorites=np.asarray(favorites, dtype=np.int64),
    )


class TestTwoHopMatch:
    def test_merges_singletons_with_shared_favorite(self):
        # 0 and 1 are singletons that both favor cluster 2
        vwgt = np.ones(3, dtype=np.int64)
        res = make_result(3, [0, 1, 2], vwgt, favorites=[2, 2, 2])
        merges = two_hop_match(res, vwgt, max_cluster_weight=10)
        assert merges == 1
        assert res.clusters[0] == res.clusters[1]
        assert res.num_clusters == 2

    def test_respects_weight_cap(self):
        # 0 and 1 both favor cluster 2 but are too heavy to pair up;
        # vertex 2 favors itself so it is not a candidate
        vwgt = np.array([6, 6, 1], dtype=np.int64)
        res = make_result(3, [0, 1, 2], vwgt, favorites=[2, 2, 2])
        merges = two_hop_match(res, vwgt, max_cluster_weight=10)
        assert merges == 0
        assert res.num_clusters == 3

    def test_self_favorite_is_not_a_candidate(self):
        """A favorite equal to the own cluster means "no favorite"."""
        vwgt = np.ones(4, dtype=np.int64)
        res = make_result(4, [0, 1, 2, 3], vwgt, favorites=[2, 3, 2, 3])
        # only 0 (favors 2) and 1 (favors 3) are candidates; they differ
        merges = two_hop_match(res, vwgt, max_cluster_weight=10)
        assert merges == 0

    def test_pairs_by_shared_favorite(self):
        vwgt = np.ones(5, dtype=np.int64)
        res = make_result(5, [0, 1, 2, 3, 4], vwgt, favorites=[4, 4, 4, 4, 4])
        merges = two_hop_match(res, vwgt, max_cluster_weight=10)
        assert merges == 2  # four candidates (0..3) pair into two merges

    def test_non_singletons_untouched(self):
        vwgt = np.ones(4, dtype=np.int64)
        # cluster 0 has two members; 2 and 3 are singletons
        res = make_result(4, [0, 0, 2, 3], vwgt, favorites=[0, 0, 0, 0])
        before = res.clusters.copy()
        two_hop_match(res, vwgt, max_cluster_weight=10)
        # members of cluster 0 never move
        assert res.clusters[0] == before[0]
        assert res.clusters[1] == before[1]

    def test_no_favorites_is_noop(self):
        vwgt = np.ones(3, dtype=np.int64)
        res = make_result(3, [0, 1, 2], vwgt, favorites=[0, 1, 2])
        res.favorites = None
        assert two_hop_match(res, vwgt, 10) == 0

    def test_weights_stay_consistent(self):
        rng = np.random.default_rng(0)
        n = 50
        vwgt = rng.integers(1, 4, size=n).astype(np.int64)
        clusters = np.arange(n, dtype=np.int64)  # all singletons
        favorites = rng.integers(0, 5, size=n)
        weights = np.zeros(n, dtype=np.int64)
        np.add.at(weights, clusters, vwgt)
        res = ClusteringResult(clusters, weights, n, favorites=favorites)
        two_hop_match(res, vwgt, max_cluster_weight=6)
        expected = np.zeros(n, dtype=np.int64)
        np.add.at(expected, res.clusters, vwgt)
        assert np.array_equal(expected, res.cluster_weights)

    def test_improves_shrink_on_star(self):
        """On a star graph LP stalls (hub cluster fills instantly); two-hop
        matching pairs up the leaves."""
        from repro.core.config import terapart
        from repro.core.context import PartitionContext
        from repro.core.coarsening.lp_clustering import (
            label_propagation_clustering,
        )
        from repro.memory import MemoryTracker

        g = gen.star(200)
        ctx = PartitionContext(
            config=terapart(seed=1),
            k=2,
            total_vertex_weight=g.total_vertex_weight,
            tracker=MemoryTracker(),
        )
        res = label_propagation_clustering(g, ctx, max_cluster_weight=4)
        before = res.num_clusters
        merges = two_hop_match(res, np.asarray(g.vwgt), 4)
        assert merges > 0
        assert res.num_clusters < before
