"""Tests for initial partitioning: GGG, 2-way FM, recursive bisection."""

import numpy as np
import pytest

from repro.core.initial.bipartition import (
    bfs_bipartition,
    greedy_graph_growing_bipartition,
    random_bipartition,
)
from repro.core.initial.fm2way import cut2way, fm2way_refine
from repro.core.initial.recursive import (
    extract_subgraph,
    initial_partition,
)
from repro.graph import generators as gen
from repro.graph.builder import from_edges


class TestGreedyGraphGrowing:
    def test_reaches_target_weight(self, grid_graph):
        rng = np.random.default_rng(0)
        total = grid_graph.total_vertex_weight
        part = greedy_graph_growing_bipartition(
            grid_graph, total // 2, int(total * 0.55), rng
        )
        w0 = int(np.asarray(grid_graph.vwgt)[part == 0].sum())
        assert total // 2 <= w0 <= int(total * 0.55)

    def test_grown_block_is_compactish(self, grid_graph):
        """GGG on a grid should produce far fewer cut edges than random."""
        rng = np.random.default_rng(1)
        total = grid_graph.total_vertex_weight
        ggg = greedy_graph_growing_bipartition(
            grid_graph, total // 2, int(total * 0.55), rng
        )
        rnd = random_bipartition(grid_graph, total // 2, rng)
        assert cut2way(grid_graph, ggg) < cut2way(grid_graph, rnd) / 2

    def test_handles_disconnected_graph(self):
        g = from_edges(6, np.array([[0, 1], [2, 3], [4, 5]]))
        rng = np.random.default_rng(2)
        part = greedy_graph_growing_bipartition(g, 3, 4, rng)
        assert (part == 0).sum() >= 3

    def test_terminates_with_heavy_vertices(self):
        """Regression: oversized vertices must not loop forever."""
        g = from_edges(
            4, np.array([[0, 1], [1, 2], [2, 3]]), vwgt=np.array([1, 9, 9, 1])
        )
        rng = np.random.default_rng(3)
        part = greedy_graph_growing_bipartition(g, 2, 2, rng)
        w0 = int(np.asarray(g.vwgt)[part == 0].sum())
        assert w0 <= 2

    def test_empty_graph(self):
        g = from_edges(0, np.zeros((0, 2), dtype=np.int64))
        part = greedy_graph_growing_bipartition(g, 0, 0, np.random.default_rng(0))
        assert len(part) == 0


class TestFM2Way:
    def test_never_worsens_cut(self, family_graph):
        rng = np.random.default_rng(4)
        total = family_graph.total_vertex_weight
        part = random_bipartition(family_graph, total // 2, rng)
        before = cut2way(family_graph, part.copy())
        lim = int(total * 0.6)
        refined = fm2way_refine(family_graph, part, (lim, lim))
        assert cut2way(family_graph, refined) <= before

    def test_respects_balance(self, grid_graph):
        rng = np.random.default_rng(5)
        total = grid_graph.total_vertex_weight
        part = random_bipartition(grid_graph, total // 2, rng)
        lim = int(total * 0.55)
        refined = fm2way_refine(grid_graph, part, (lim, lim))
        w0 = int(np.asarray(grid_graph.vwgt)[refined == 0].sum())
        assert w0 <= lim and total - w0 <= lim

    def test_finds_obvious_improvement(self):
        """Two cliques with one crossing edge; a bad split must be fixed."""
        edges = []
        for block in range(2):
            off = block * 4
            for i in range(4):
                for j in range(i + 1, 4):
                    edges.append([off + i, off + j])
        edges.append([3, 4])
        g = from_edges(8, np.array(edges))
        # misassign one vertex per side
        part = np.array([0, 0, 0, 1, 1, 1, 1, 0], dtype=np.int32)
        refined = fm2way_refine(g, part, (5, 5))
        assert cut2way(g, refined) == 1

    def test_cut2way_matches_manual(self, tiny_graph):
        part = np.array([0, 0, 0, 1, 1, 1], dtype=np.int32)
        assert cut2way(tiny_graph, part) == 1


class TestExtractSubgraph:
    def test_induced_edges_only(self, tiny_graph):
        mask = np.array([True, True, True, False, False, False])
        sub, ids = extract_subgraph(tiny_graph, mask)
        assert sub.n == 3
        assert sub.m == 3  # the triangle
        assert ids.tolist() == [0, 1, 2]

    def test_preserves_weights(self, weighted_graph):
        mask = np.array([True, True, True, False])
        sub, ids = extract_subgraph(weighted_graph, mask)
        sub.validate()
        # edge (0,1) has weight 5, (1,2) weight 1, (0,2) weight 10
        w01 = sub.edge_weights(0)[sub.neighbors(0).tolist().index(1)]
        assert int(w01) == 5

    def test_empty_mask(self, tiny_graph):
        sub, ids = extract_subgraph(tiny_graph, np.zeros(6, dtype=bool))
        assert sub.n == 0 and len(ids) == 0

    def test_compressed_graph_supported(self, web_graph):
        from repro.graph.compressed import compress_graph

        cg = compress_graph(web_graph)
        mask = np.zeros(web_graph.n, dtype=bool)
        mask[: web_graph.n // 2] = True
        sub_c, _ = extract_subgraph(cg, mask)
        sub_u, _ = extract_subgraph(web_graph, mask)
        assert sub_c.n == sub_u.n and sub_c.m == sub_u.m


class TestInitialPartition:
    @pytest.mark.parametrize("k", [1, 2, 3, 7, 8, 16])
    def test_produces_k_blocks(self, grid_graph, k):
        part = initial_partition(grid_graph, k, 0.05, np.random.default_rng(6))
        assert part.min() >= 0 and part.max() <= k - 1
        if k <= grid_graph.n:
            assert len(np.unique(part)) == k

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_balance_roughly_met(self, grid_graph, k):
        """Initial partitioning targets the constraint but integer rounding
        across bisection levels can overshoot by a couple of vertices; the
        driver's rebalancer enforces the hard constraint afterwards (see
        test_partitioner.py)."""
        eps = 0.05
        part = initial_partition(grid_graph, k, eps, np.random.default_rng(7))
        weights = np.bincount(part, minlength=k)
        lmax = (1 + eps) * -(-grid_graph.n // k)
        assert weights.max() <= lmax + 2

    def test_k1_trivial(self, tiny_graph):
        part = initial_partition(tiny_graph, 1, 0.03, np.random.default_rng(8))
        assert np.all(part == 0)

    def test_quality_beats_random_on_grid(self, grid_graph):
        from repro.core.partition import PartitionedGraph

        rng = np.random.default_rng(9)
        part = initial_partition(grid_graph, 4, 0.05, rng)
        pg = PartitionedGraph(grid_graph, 4, part)
        rand = PartitionedGraph(
            grid_graph, 4, rng.integers(0, 4, size=grid_graph.n).astype(np.int32)
        )
        assert pg.cut_weight() < rand.cut_weight() / 2
