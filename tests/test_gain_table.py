"""Tests for the three gain-table strategies (Section V)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import PartitionedGraph
from repro.core.refinement.gain_table import (
    FullGainTable,
    NoGainTable,
    SparseGainTable,
    entry_width_bits,
    make_gain_table,
)
from repro.graph import generators as gen
from repro.graph.builder import from_edges
from repro.memory import MemoryTracker


def make_pgraph(graph, k, seed=0):
    rng = np.random.default_rng(seed)
    part = rng.integers(0, k, size=graph.n).astype(np.int32)
    return PartitionedGraph(graph, k, part)


def brute_affinity(pgraph, u, block):
    g = pgraph.graph
    nbrs, wgts = g.neighbors_and_weights(u)
    mask = pgraph.partition[np.asarray(nbrs)] == block
    return int(np.asarray(wgts)[mask].sum())


KINDS = ["none", "full", "sparse"]


class TestEntryWidth:
    @pytest.mark.parametrize(
        "weight,bits",
        [(0, 8), (255, 8), (256, 16), (65535, 16), (65536, 32), (2**32, 64)],
    )
    def test_width_selection(self, weight, bits):
        assert entry_width_bits(weight) == bits


class TestCorrectness:
    @pytest.mark.parametrize("kind", KINDS)
    def test_affinity_matches_bruteforce(self, family_graph, kind):
        pg = make_pgraph(family_graph, 5)
        table = make_gain_table(kind, pg)
        for u in range(0, family_graph.n, max(1, family_graph.n // 40)):
            for b in range(5):
                assert table.affinity(u, b) == brute_affinity(pg, u, b), (
                    kind,
                    u,
                    b,
                )

    @pytest.mark.parametrize("kind", KINDS)
    def test_adjacent_blocks(self, grid_graph, kind):
        pg = make_pgraph(grid_graph, 4)
        table = make_gain_table(kind, pg)
        for u in range(0, grid_graph.n, 13):
            nbrs = grid_graph.neighbors(u)
            expected = set(np.unique(pg.partition[nbrs]).tolist())
            got = set(np.asarray(table.adjacent_blocks(u)).tolist())
            assert got == expected

    @pytest.mark.parametrize("kind", KINDS)
    def test_gains_definition(self, grid_graph, kind):
        """gain(u -> b) = w(u, b) - w(u, current block)."""
        pg = make_pgraph(grid_graph, 4)
        table = make_gain_table(kind, pg)
        for u in range(0, grid_graph.n, 17):
            cur = int(pg.partition[u])
            blocks, gains = table.gains(u)
            for b, g in zip(np.asarray(blocks).tolist(), np.asarray(gains).tolist()):
                assert g == brute_affinity(pg, u, b) - brute_affinity(pg, u, cur)

    @pytest.mark.parametrize("kind", ["full", "sparse"])
    def test_stays_correct_after_moves(self, family_graph, kind):
        pg = make_pgraph(family_graph, 6, seed=1)
        table = make_gain_table(kind, pg)
        rng = np.random.default_rng(2)
        for _ in range(60):
            u = int(rng.integers(0, family_graph.n))
            dst = int(rng.integers(0, 6))
            src = int(pg.partition[u])
            if src == dst:
                continue
            pg.move(u, dst)
            table.apply_move(u, src, dst)
        for u in range(0, family_graph.n, max(1, family_graph.n // 30)):
            for b in range(6):
                assert table.affinity(u, b) == brute_affinity(pg, u, b)

    def test_weighted_graph(self, text_graph):
        pg = make_pgraph(text_graph, 3, seed=3)
        sparse = SparseGainTable(pg)
        full = FullGainTable(pg)
        for u in range(0, text_graph.n, 11):
            for b in range(3):
                assert sparse.affinity(u, b) == full.affinity(u, b)


class TestSparseInternals:
    def test_high_degree_vertices_get_dense_rows(self):
        g = gen.star(200)
        pg = make_pgraph(g, 8, seed=4)
        table = SparseGainTable(pg)
        assert table._dense[0]  # hub: degree 199 >= k=8
        assert not table._dense[1]  # leaf: degree 1 < k

    def test_deletion_closes_probe_gaps(self):
        """After an affinity drops to zero, other keys stay findable."""
        g = gen.complete(6)
        pg = PartitionedGraph(
            g, 6, np.arange(6, dtype=np.int32)
        )  # every vertex its own block
        table = SparseGainTable(pg)
        # move vertex 1 into block 0: vertex 2's affinity to block 1 -> 0
        pg.move(1, 0)
        table.apply_move(1, 1, 0)
        for u in range(2, 6):
            assert table.affinity(u, 1) == 0
            assert table.affinity(u, 0) == 2  # vertices 0 and 1 both there
            got = set(np.asarray(table.adjacent_blocks(u)).tolist())
            expected = set(np.unique(pg.partition[g.neighbors(u)]).tolist())
            assert got == expected

    def test_memory_o_m_vs_o_nk(self):
        """The headline: sparse ~ O(m), full = O(nk) (5.8x on big graphs)."""
        g = gen.rgg2d(2000, avg_degree=8, seed=5)
        k = 128
        pg = make_pgraph(g, k, seed=5)
        sparse = SparseGainTable(pg)
        full = FullGainTable(pg)
        assert sparse.nbytes < full.nbytes / 5

    def test_variable_width_reduces_footprint(self):
        g = gen.grid2d(30, 30)  # unit weights: U < 256 -> 8-bit entries
        pg = make_pgraph(g, 4, seed=6)
        table = SparseGainTable(pg)
        # all widths should be 8 bits
        assert int(table._width_bits.max()) == 8

    def test_tracker_charging(self, grid_graph):
        tracker = MemoryTracker()
        pg = make_pgraph(grid_graph, 4)
        table = SparseGainTable(pg, tracker)
        assert tracker.current_bytes == table.nbytes
        table.free(tracker)
        assert tracker.current_bytes == 0

    def test_negative_affinity_rejected(self):
        g = gen.path(4)
        pg = PartitionedGraph(g, 2, np.array([0, 0, 1, 1], dtype=np.int32))
        table = SparseGainTable(pg)
        with pytest.raises(AssertionError):
            table._insert_add(0, 0, -100)


class TestNoGainTable:
    def test_counts_recompute_work(self, grid_graph):
        pg = make_pgraph(grid_graph, 4)
        table = NoGainTable(pg)
        table.gains(10)
        table.affinity(10, 0)
        assert table.recompute_edges > 0

    def test_zero_memory(self, grid_graph):
        pg = make_pgraph(grid_graph, 4)
        assert NoGainTable(pg).nbytes == 0


class TestFactory:
    def test_factory_dispatch(self, grid_graph):
        pg = make_pgraph(grid_graph, 2)
        from repro.core.config import GainTableKind

        assert isinstance(make_gain_table(GainTableKind.NONE, pg), NoGainTable)
        assert isinstance(make_gain_table(GainTableKind.FULL, pg), FullGainTable)
        assert isinstance(make_gain_table(GainTableKind.SPARSE, pg), SparseGainTable)

    def test_unknown_kind(self, grid_graph):
        pg = make_pgraph(grid_graph, 2)
        with pytest.raises(KeyError):
            make_gain_table("magic", pg)


class TestPropertyEquivalence:
    @given(
        seed=st.integers(0, 10**6),
        k=st.integers(2, 12),
        moves=st.integers(0, 40),
    )
    @settings(max_examples=25, deadline=None)
    def test_sparse_equals_full_under_random_moves(self, seed, k, moves):
        rng = np.random.default_rng(seed)
        g = gen.er(60, 6.0, seed=seed % 100)
        pg_s = make_pgraph(g, k, seed=seed)
        pg_f = PartitionedGraph(g, k, pg_s.partition.copy())
        sparse = SparseGainTable(pg_s)
        full = FullGainTable(pg_f)
        for _ in range(moves):
            u = int(rng.integers(0, g.n))
            dst = int(rng.integers(0, k))
            src = int(pg_s.partition[u])
            if src == dst:
                continue
            pg_s.move(u, dst)
            sparse.apply_move(u, src, dst)
            pg_f.move(u, dst)
            full.apply_move(u, src, dst)
        for u in range(g.n):
            for b in range(k):
                assert sparse.affinity(u, b) == full.affinity(u, b)
