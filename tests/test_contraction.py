"""Tests for buffered and one-pass contraction (Section IV-B)."""

import numpy as np
import pytest

from repro.core.config import kaminpar, terapart
from repro.core.context import PartitionContext
from repro.core.coarsening.contraction import (
    aggregate_coarse_edges,
    contract_buffered,
)
from repro.core.coarsening.one_pass_contraction import contract_one_pass
from repro.graph import generators as gen
from repro.graph.builder import from_edges
from repro.memory import MemoryTracker


def make_ctx(graph, preset=terapart, p=8, k=4, chunk_size=512):
    from repro.parallel import ParallelRuntime

    return PartitionContext(
        config=preset(seed=7, p=p),
        k=k,
        total_vertex_weight=graph.total_vertex_weight,
        tracker=MemoryTracker(),
        runtime=ParallelRuntime(p, chunk_size=chunk_size),
    )


def random_clustering(graph, n_clusters, seed=0):
    """A valid clustering: leader IDs are member vertex IDs."""
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, n_clusters, size=graph.n)
    # leader of cluster c = smallest vertex assigned to c
    clusters = np.empty(graph.n, dtype=np.int64)
    for c in range(n_clusters):
        members = np.flatnonzero(assignment == c)
        if len(members):
            clusters[members] = members[0]
    # unassigned clusters never happen: every vertex got some c
    weights = np.zeros(graph.n, dtype=np.int64)
    np.add.at(weights, clusters, np.asarray(graph.vwgt))
    return clusters, weights


def canonical_edges(g, vertex_key):
    """Edge multiset relabeled by a canonical vertex key for comparison."""
    rows = []
    for u in range(g.n):
        nbrs, wgts = g.neighbors_and_weights(u)
        for v, w in zip(np.asarray(nbrs).tolist(), np.asarray(wgts).tolist()):
            rows.append((vertex_key[u], vertex_key[v], w))
    return sorted(rows)


class TestAggregateCoarseEdges:
    def test_merges_parallel_edges(self):
        # path 0-1-2-3, contract {0,1} and {2,3}
        g = gen.path(4)
        f2c = np.array([0, 0, 1, 1])
        cu, cv, w = aggregate_coarse_edges(g, f2c, 2)
        assert sorted(zip(cu.tolist(), cv.tolist(), w.tolist())) == [
            (0, 1, 1),
            (1, 0, 1),
        ]

    def test_sums_weights(self):
        g = from_edges(
            4,
            np.array([[0, 2], [0, 3], [1, 2], [1, 3]]),
            np.array([1, 2, 3, 4]),
        )
        f2c = np.array([0, 0, 1, 1])
        cu, cv, w = aggregate_coarse_edges(g, f2c, 2)
        assert sorted(zip(cu.tolist(), cv.tolist(), w.tolist())) == [
            (0, 1, 10),
            (1, 0, 10),
        ]

    def test_drops_intra_cluster_edges(self):
        g = gen.complete(4)
        f2c = np.zeros(4, dtype=np.int64)
        cu, cv, w = aggregate_coarse_edges(g, f2c, 1)
        assert len(cu) == 0


class TestBufferedContraction:
    def test_coarse_graph_valid(self, family_graph):
        clusters, weights = random_clustering(family_graph, 20, seed=1)
        ctx = make_ctx(family_graph)
        out = contract_buffered(family_graph, clusters, weights, ctx)
        out.coarse.validate()

    def test_preserves_total_vertex_weight(self, grid_graph):
        clusters, weights = random_clustering(grid_graph, 10)
        ctx = make_ctx(grid_graph)
        out = contract_buffered(grid_graph, clusters, weights, ctx)
        assert out.coarse.total_vertex_weight == grid_graph.total_vertex_weight

    def test_cut_preserved_under_projection(self, grid_graph):
        """Edge weight between two coarse vertices == total fine edge weight
        between their clusters."""
        clusters, weights = random_clustering(grid_graph, 8, seed=3)
        ctx = make_ctx(grid_graph)
        out = contract_buffered(grid_graph, clusters, weights, ctx)
        # compare against a brute-force count for a few pairs
        f2c = out.fine_to_coarse
        coarse = out.coarse
        for a in range(min(4, coarse.n)):
            nbrs, wgts = coarse.neighbors_and_weights(a)
            for b, w in zip(np.asarray(nbrs).tolist(), np.asarray(wgts).tolist()):
                brute = 0
                for u in np.flatnonzero(f2c == a).tolist():
                    nu, wu = grid_graph.neighbors_and_weights(u)
                    mask = f2c[np.asarray(nu)] == b
                    brute += int(np.asarray(wu)[mask].sum())
                assert brute == w

    def test_fine_to_coarse_consistent(self, grid_graph):
        clusters, weights = random_clustering(grid_graph, 10)
        ctx = make_ctx(grid_graph)
        out = contract_buffered(grid_graph, clusters, weights, ctx)
        # same cluster -> same coarse vertex
        assert np.array_equal(
            out.fine_to_coarse[clusters == clusters[0]],
            np.full((clusters == clusters[0]).sum(), out.fine_to_coarse[0]),
        )
        assert out.fine_to_coarse.max() == out.coarse.n - 1


class TestOnePassContraction:
    def test_coarse_graph_valid(self, family_graph):
        clusters, weights = random_clustering(family_graph, 20, seed=2)
        ctx = make_ctx(family_graph)
        out = contract_one_pass(family_graph, clusters, weights, ctx)
        out.coarse.validate()

    def test_isomorphic_to_buffered(self, family_graph):
        clusters, weights = random_clustering(family_graph, 15, seed=4)
        out_b = contract_buffered(
            family_graph, clusters.copy(), weights.copy(), make_ctx(family_graph)
        )
        out_o = contract_one_pass(
            family_graph, clusters.copy(), weights.copy(), make_ctx(family_graph)
        )
        assert out_b.coarse.n == out_o.coarse.n
        assert out_b.coarse.m == out_o.coarse.m
        # exact correspondence through cluster leaders: vertex keys from the
        # respective fine_to_coarse maps relabel both to the same multiset
        key_b = np.empty(out_b.coarse.n, dtype=np.int64)
        key_b[out_b.fine_to_coarse] = clusters  # coarse id -> leader id
        key_o = np.empty(out_o.coarse.n, dtype=np.int64)
        key_o[out_o.fine_to_coarse] = clusters
        assert canonical_edges(out_b.coarse, key_b) == canonical_edges(
            out_o.coarse, key_o
        )
        # vertex weights correspond too
        wb = {int(k): int(out_b.coarse.vwgt[i]) for i, k in enumerate(key_b)}
        wo = {int(k): int(out_o.coarse.vwgt[i]) for i, k in enumerate(key_o)}
        assert wb == wo

    def test_relabeling_differs_from_buffered(self, web_graph):
        """One-pass relabels by chunk completion order (not leader order)."""
        clusters, weights = random_clustering(web_graph, 50, seed=5)
        out_b = contract_buffered(
            web_graph, clusters.copy(), weights.copy(), make_ctx(web_graph)
        )
        # small chunks -> several chunks -> shuffled completion order
        out_o = contract_one_pass(
            web_graph,
            clusters.copy(),
            weights.copy(),
            make_ctx(web_graph, chunk_size=8),
        )
        assert not np.array_equal(out_b.fine_to_coarse, out_o.fine_to_coarse)

    def test_neighborhoods_consecutive_in_eprime(self, grid_graph):
        """P' must be non-decreasing: consecutive IDs, consecutive ranges."""
        clusters, weights = random_clustering(grid_graph, 12, seed=6)
        out = contract_one_pass(grid_graph, clusters, weights, make_ctx(grid_graph))
        assert np.all(np.diff(out.coarse.indptr) >= 0)

    def test_uses_less_peak_memory_than_buffered(self):
        # needs enough coarse vertices that the buffered scheme's per-thread
        # O(n') aggregation maps dominate the one-pass scheme's fixed-size
        # tables (the regime the paper's graphs are always in)
        g = gen.weblike(6000, avg_degree=12, seed=7)
        clusters, weights = random_clustering(g, 3000, seed=7)
        ctx_b = make_ctx(g, p=16)
        ctx_o = make_ctx(g, p=16)
        with ctx_b.tracker.phase("c"):
            contract_buffered(g, clusters.copy(), weights.copy(), ctx_b)
        with ctx_o.tracker.phase("c"):
            contract_one_pass(g, clusters.copy(), weights.copy(), ctx_o)
        assert ctx_o.tracker.phase_peak("c") < ctx_b.tracker.phase_peak("c")

    def test_identity_clustering(self, tiny_graph):
        """Contracting singletons reproduces the graph (relabeled)."""
        clusters = np.arange(tiny_graph.n, dtype=np.int64)
        weights = np.asarray(tiny_graph.vwgt).copy()
        out = contract_one_pass(tiny_graph, clusters, weights, make_ctx(tiny_graph))
        assert out.coarse.n == tiny_graph.n
        assert out.coarse.m == tiny_graph.m

    def test_single_cluster(self, tiny_graph):
        clusters = np.zeros(tiny_graph.n, dtype=np.int64)
        weights = np.zeros(tiny_graph.n, dtype=np.int64)
        weights[0] = tiny_graph.total_vertex_weight
        out = contract_one_pass(tiny_graph, clusters, weights, make_ctx(tiny_graph))
        assert out.coarse.n == 1
        assert out.coarse.m == 0
        assert out.coarse.total_vertex_weight == tiny_graph.total_vertex_weight
