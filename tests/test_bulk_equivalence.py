"""Differential-equivalence harness for the bulk numpy kernels.

Acceptance bar from the bulk-kernels issue: routing the hot phases
(two-phase LP clustering commits, one-pass contraction aggregation, LP
refinement move scoring, gain-table construction/probing) through the
chunk kernels in :mod:`repro.core.kernels` must leave partitions
*bit-identical* to the per-vertex scalar reference paths across >= 8
seeds x p in {1, 2, 4, 8}, for both the LP pipeline (``terapart``) and
the FM pipelines (``terapart-fm*``); and a selfcheck run (conflict
detector + fuzzed schedules + invariant checks) must stay clean with
the kernels on.
"""

import numpy as np
import pytest

import repro
from repro.core.config import DebugConfig, preset
from repro.graph import generators as gen
from repro.parallel.runtime import SCHEDULE_POLICIES

SEEDS = range(8)
PS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def mesh():
    return gen.rgg2d(400, avg_degree=8, seed=11)


@pytest.fixture(scope="module")
def web():
    return gen.weblike(350, avg_degree=7, seed=11)


def _pair(graph, name, *, seed, p, k=4, **overrides):
    """Partition with kernels on and off; everything else identical."""
    runs = []
    for bulk in (True, False):
        cfg = preset(name, seed=seed, p=p, use_bulk_kernels=bulk, **overrides)
        runs.append(repro.partition(graph, k, cfg))
    return runs


def _assert_identical(a, b, ctxt):
    assert np.array_equal(a.partition, b.partition), ctxt
    assert a.cut == b.cut, ctxt
    assert a.imbalance == b.imbalance, ctxt


@pytest.mark.parametrize("p", PS)
def test_terapart_bit_identical_full_matrix(mesh, p):
    """The headline matrix: 8 seeds x every thread count on the LP path."""
    for seed in SEEDS:
        a, b = _pair(mesh, "terapart", seed=seed, p=p)
        _assert_identical(a, b, f"terapart seed={seed} p={p}")


@pytest.mark.parametrize("p", (1, 4, 8))
def test_terapart_bit_identical_weblike(web, p):
    """Skewed degree distribution exercises the hash gain-table rows and
    high-degree contraction segments."""
    for seed in range(4):
        a, b = _pair(web, "terapart", seed=seed, p=p)
        _assert_identical(a, b, f"terapart/web seed={seed} p={p}")


@pytest.mark.parametrize(
    "name", ("terapart-fm", "terapart-fm-full", "terapart-fm-none")
)
def test_fm_presets_bit_identical(web, name):
    """FM refinement: gains_many seeding + gain-table kernels, all three
    gain-table kinds."""
    for seed in range(3):
        for p in (1, 8):
            a, b = _pair(web, name, seed=seed, p=p)
            _assert_identical(a, b, f"{name} seed={seed} p={p}")


def test_uncompressed_input_bit_identical(mesh):
    """CSR-input path (no compression) uses different adjacency access
    kernels; it must agree with its scalar twin too."""
    for seed in range(4):
        a, b = _pair(mesh, "terapart", seed=seed, p=4, compress_input=False)
        _assert_identical(a, b, f"csr seed={seed} p=4")


@pytest.mark.parametrize("policy", SCHEDULE_POLICIES)
def test_selfcheck_schedule_fuzz_zero_conflicts(mesh, policy):
    """Kernels on + conflict detector + every schedule policy: zero
    conflicts, and the fuzzed schedule still reproduces the issue-order
    partition (determinism is schedule-independent)."""
    base = None
    for schedule_seed in (0, 7):
        cfg = preset("terapart", seed=2, p=8).with_(
            debug=DebugConfig(
                validation_level=2,
                detect_conflicts=True,
                schedule_policy=policy,
                schedule_seed=schedule_seed,
            )
        )
        res = repro.partition(mesh, 4, cfg)
        sc = res.selfcheck
        assert sc is not None and sc["conflicts"] == [], (policy, schedule_seed)
        assert sc["invariant_checks"] > 0
        if base is None:
            base = res.partition
        else:
            assert np.array_equal(res.partition, base), (policy, schedule_seed)
