"""Tests for the rating-map structures (Section IV-A1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coarsening.rating_map import (
    FixedCapacityHashTable,
    SparseArrayRatingMap,
)


class TestFixedCapacityHashTable:
    def test_insert_and_get(self):
        t = FixedCapacityHashTable(8)
        assert t.insert_add(5, 10)
        assert t.insert_add(5, 3)
        assert t.get(5) == 13
        assert t.get(99) == 0
        assert len(t) == 1

    def test_argmax(self):
        t = FixedCapacityHashTable(8)
        t.insert_add(1, 5)
        t.insert_add(2, 9)
        t.insert_add(3, 7)
        assert t.argmax() == (2, 9)

    def test_argmax_empty(self):
        assert FixedCapacityHashTable(4).argmax() == (-1, 0)

    def test_reports_full(self):
        t = FixedCapacityHashTable(2)  # capacity rounds to pow2; load <= 1/2
        inserted = 0
        full_seen = False
        for key in range(100):
            if t.insert_add(key, 1):
                inserted += 1
            else:
                full_seen = True
                break
        assert full_seen
        assert inserted >= 2

    def test_existing_key_updatable_when_full(self):
        t = FixedCapacityHashTable(2)
        keys = []
        for key in range(100):
            if not t.insert_add(key, 1):
                break
            keys.append(key)
        # updating an existing key still works at capacity
        assert t.insert_add(keys[0], 5)
        assert t.get(keys[0]) == 6

    def test_clear(self):
        t = FixedCapacityHashTable(8)
        t.insert_add(3, 1)
        t.clear()
        assert len(t) == 0
        assert t.get(3) == 0

    def test_items_match_inserts(self):
        t = FixedCapacityHashTable(32)
        expected = {}
        rng = np.random.default_rng(0)
        for _ in range(30):
            k = int(rng.integers(0, 20))
            v = int(rng.integers(1, 10))
            if t.insert_add(k, v):
                expected[k] = expected.get(k, 0) + v
        keys, vals = t.items()
        assert dict(zip(keys.tolist(), vals.tolist())) == expected

    def test_nbytes_scales_with_capacity(self):
        assert FixedCapacityHashTable(64).nbytes > FixedCapacityHashTable(8).nbytes

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FixedCapacityHashTable(0)

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 100)), max_size=40))
    @settings(max_examples=50)
    def test_matches_dict_semantics(self, ops):
        t = FixedCapacityHashTable(64)
        ref: dict[int, int] = {}
        for k, v in ops:
            if t.insert_add(k, v):
                ref[k] = ref.get(k, 0) + v
        for k in range(31):
            assert t.get(k) == ref.get(k, 0)


class TestSparseArrayRatingMap:
    def test_add_and_argmax(self):
        m = SparseArrayRatingMap(100, num_threads=2)
        m.add(0, 5, 10)
        m.add(1, 7, 20)
        m.add(0, 7, 5)
        assert m.argmax() == (7, 25)

    def test_first_writer_tracks_nonzero(self):
        """Only the thread raising 0 -> positive records the cluster."""
        m = SparseArrayRatingMap(50, num_threads=3)
        m.add(0, 9, 1)
        m.add(1, 9, 1)
        m.add(2, 9, 1)
        nz = m.nonzero_clusters()
        assert nz.tolist() == [9]

    def test_reset_clears_only_touched(self):
        m = SparseArrayRatingMap(1000, num_threads=1)
        m.add(0, 3, 7)
        m.add(0, 500, 9)
        m.reset()
        assert m.array[3] == 0 and m.array[500] == 0
        assert len(m.nonzero_clusters()) == 0
        # reusable afterwards
        m.add(0, 3, 1)
        assert m.argmax() == (3, 1)

    def test_flush_table_applies_and_clears(self):
        m = SparseArrayRatingMap(100, num_threads=2)
        t = FixedCapacityHashTable(8)
        t.insert_add(4, 6)
        t.insert_add(9, 2)
        m.flush_table(0, t)
        assert len(t) == 0
        assert m.array[4] == 6 and m.array[9] == 2
        assert sorted(m.nonzero_clusters().tolist()) == [4, 9]

    def test_flush_deduplicates_across_threads(self):
        m = SparseArrayRatingMap(100, num_threads=2)
        t0 = FixedCapacityHashTable(8)
        t1 = FixedCapacityHashTable(8)
        t0.insert_add(4, 6)
        t1.insert_add(4, 5)
        m.flush_table(0, t0)
        m.flush_table(1, t1)
        assert m.array[4] == 11
        assert m.nonzero_clusters().tolist() == [4]

    def test_atomic_op_counting(self):
        m = SparseArrayRatingMap(10, num_threads=1)
        m.add(0, 1, 1)
        m.add(0, 2, 1)
        assert m.atomic_ops == 2

    def test_nbytes_proportional_to_n(self):
        assert SparseArrayRatingMap(1000).nbytes == 8 * 1000
