"""Tests for the five baseline partitioners."""

import numpy as np
import pytest

import repro
from repro.baselines import (
    heistream_partition,
    mtmetis_partition,
    parmetis_partition,
    sem_partition,
    xtrapulp_partition,
)
from repro.baselines.mtmetis import shem_matching
from repro.core import config as C
from repro.core.partition import PartitionedGraph
from repro.graph import generators as gen


@pytest.fixture(scope="module")
def rgg():
    return gen.rgg2d(2500, avg_degree=8, seed=41)


@pytest.fixture(scope="module")
def rhg():
    return gen.rhg(2500, avg_degree=8, seed=42)


def random_cut(graph, k, seed=0):
    rng = np.random.default_rng(seed)
    return PartitionedGraph(
        graph, k, rng.integers(0, k, size=graph.n).astype(np.int32)
    ).cut_weight()


class TestShemMatching:
    def test_is_a_matching(self, rgg):
        match = shem_matching(rgg, np.random.default_rng(0))
        # every matched group has size <= 2
        sizes = np.zeros(rgg.n, dtype=np.int64)
        np.add.at(sizes, match, 1)
        assert sizes.max() <= 2
        # leaders are group members
        for u in range(0, rgg.n, 97):
            assert match[match[u]] == match[u]

    def test_prefers_heavy_edges(self):
        from repro.graph.builder import from_edges

        g = from_edges(
            3, np.array([[0, 1], [1, 2]]), np.array([1, 100])
        )
        match = shem_matching(g, np.random.default_rng(0))
        assert match[1] == match[2]  # the weight-100 edge is matched


class TestMtMetis:
    def test_produces_partition(self, rgg):
        r = mtmetis_partition(rgg, 8, seed=1)
        assert len(np.unique(r.partition)) == 8
        assert r.cut < random_cut(rgg, 8) / 2
        assert not r.failed

    def test_memory_budget_failure(self, rgg):
        r = mtmetis_partition(rgg, 8, seed=1, memory_budget=1000)
        assert r.failed
        assert "memory" in r.failure_reason

    def test_uses_more_memory_than_terapart(self, rgg):
        mt = mtmetis_partition(rgg, 8, seed=1, p=96)
        tp = repro.partition(rgg, 8, C.terapart(seed=1, p=96))
        assert mt.peak_bytes > tp.peak_bytes

    def test_modeled_slower_than_terapart(self, rgg):
        mt = mtmetis_partition(rgg, 8, seed=1, p=96)
        tp = repro.partition(rgg, 8, C.terapart(seed=1, p=96))
        assert mt.modeled_seconds > tp.modeled_seconds

    def test_matching_hierarchy_deeper_than_lp(self, rgg):
        mt = mtmetis_partition(rgg, 8, seed=1)
        tp = repro.partition(rgg, 8, C.terapart(seed=1))
        assert mt.num_levels >= tp.num_levels


class TestXtraPulp:
    def test_partitions_but_worse_than_multilevel(self, rhg):
        xp = xtrapulp_partition(rhg, 8, seed=1)
        tp = repro.partition(rhg, 8, C.terapart(seed=1))
        assert xp.cut > 1.5 * tp.cut  # paper: 5.6x-68x at scale
        assert xp.cut < random_cut(rhg, 8)  # but far better than random

    def test_low_memory(self, rhg):
        xp = xtrapulp_partition(rhg, 8, seed=1)
        # O(n + k) auxiliary: labels dominate
        assert xp.peak_bytes < 3 * rhg.nbytes

    def test_all_blocks_used(self, rgg):
        xp = xtrapulp_partition(rgg, 8, seed=1)
        assert len(np.unique(xp.partition)) == 8


class TestHeiStream:
    def test_single_pass_quality_gap(self, rhg):
        hs = heistream_partition(rhg, 8, seed=1, buffer_size=256)
        tp = repro.partition(rhg, 8, C.terapart(seed=1))
        assert hs.cut > 1.5 * tp.cut
        assert hs.cut < random_cut(rhg, 8)

    def test_balanced_by_construction(self, rgg):
        hs = heistream_partition(rgg, 8, seed=1, buffer_size=256)
        assert hs.balanced

    def test_batch_count(self, rgg):
        hs = heistream_partition(rgg, 8, seed=1, buffer_size=500)
        assert hs.num_batches == -(-rgg.n // 500)

    def test_rhg_worse_than_rgg(self, rgg, rhg):
        """The paper's 3.1x vs 14.8x asymmetry: streaming hurts power-law
        graphs more."""
        ratios = {}
        for name, g in (("rgg", rgg), ("rhg", rhg)):
            hs = heistream_partition(g, 16, seed=1, buffer_size=256)
            tp = repro.partition(g, 16, C.terapart(seed=1))
            ratios[name] = hs.cut / max(1, tp.cut)
        assert ratios["rhg"] > ratios["rgg"] * 0.8


class TestSem:
    def test_produces_good_partition(self, rgg):
        se = sem_partition(rgg, 8, seed=1)
        tp = repro.partition(rgg, 8, C.terapart(seed=1))
        assert se.cut < 2.0 * tp.cut
        assert se.balanced

    def test_streams_multiple_passes(self, rgg):
        se = sem_partition(rgg, 8, seed=1)
        assert se.passes >= 3
        assert se.streamed_bytes > rgg.num_directed_edges * 16 * 2

    def test_modeled_much_slower_than_terapart(self, rgg):
        se = sem_partition(rgg, 8, seed=1)
        tp = repro.partition(rgg, 8, C.terapart(seed=1, p=16))
        assert se.modeled_seconds > 2 * tp.modeled_seconds

    def test_memory_is_o_n_plus_coarse(self, rgg):
        se = sem_partition(rgg, 8, seed=1)
        # far below the uncompressed graph + O(np) aux a naive run needs
        assert se.peak_bytes < 3 * rgg.nbytes


class TestParMetis:
    def test_distributed_multilevel_quality(self, rgg):
        pm = parmetis_partition(rgg, 8, ranks=4, seed=1)
        tp = repro.partition(rgg, 8, C.terapart(seed=1))
        assert pm.cut < 2.0 * tp.cut  # competitive (both multilevel)

    def test_memory_overhead_vs_xterapart(self, rgg):
        from repro.dist import dpartition

        pm = parmetis_partition(rgg, 8, ranks=4, seed=1)
        xt = dpartition(rgg, 8, 4, compressed=True)
        assert pm.max_rank_peak_bytes > 2 * xt.max_rank_peak_bytes

    def test_oom_budget(self, rgg):
        pm = parmetis_partition(
            rgg, 8, ranks=4, seed=1, rank_memory_budget=1000
        )
        assert pm.oom
