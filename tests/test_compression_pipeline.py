"""Tests for the parallel single-pass compression pipeline (Section III-B)."""

import numpy as np

from repro.graph import generators as gen
from repro.graph.compressed import compress_graph
from repro.graph.compression import (
    compress_graph_parallel,
    compressed_size_upper_bound,
    io_time_model,
)
from repro.memory import MemoryTracker
from repro.parallel import ParallelRuntime


class TestByteIdentical:
    def test_matches_sequential_output(self, family_graph):
        rt = ParallelRuntime(8, chunk_size=32)
        cgp, _ = compress_graph_parallel(family_graph, rt)
        cgs = compress_graph(family_graph)
        assert cgp.data == cgs.data
        assert np.array_equal(cgp.offsets, cgs.offsets)

    def test_independent_of_thread_count(self, web_graph):
        outs = []
        for p in (1, 3, 16):
            rt = ParallelRuntime(p, chunk_size=50)
            cg, _ = compress_graph_parallel(web_graph, rt)
            outs.append(cg.data)
        assert outs[0] == outs[1] == outs[2]


class TestOrderedWriter:
    def test_claims_are_contiguous_and_ordered(self, web_graph):
        rt = ParallelRuntime(4, chunk_size=64)
        _, traces = compress_graph_parallel(web_graph, rt)
        pos = 0
        for t in traces:
            assert t.claim_position == pos
            pos += t.buffer_bytes

    def test_packets_balance_edges(self, web_graph):
        rt = ParallelRuntime(4, chunk_size=64)
        _, traces = compress_graph_parallel(web_graph, rt)
        if len(traces) >= 4:
            # balanced packets: no single packet holds most of the bytes
            total = sum(t.buffer_bytes for t in traces)
            assert max(t.buffer_bytes for t in traces) < 0.8 * total


class TestOvercommitAccounting:
    def test_peak_well_below_upper_bound(self, web_graph):
        tracker = MemoryTracker()
        rt = ParallelRuntime(4, chunk_size=64)
        cg, _ = compress_graph_parallel(web_graph, rt, tracker=tracker)
        bound = compressed_size_upper_bound(
            web_graph.degrees, web_graph.has_edge_weights
        )
        assert tracker.peak_bytes < bound / 3
        tracker.assert_empty(ignore_categories=("graph",))

    def test_final_allocation_matches_graph(self, grid_graph):
        tracker = MemoryTracker()
        rt = ParallelRuntime(2)
        cg, _ = compress_graph_parallel(grid_graph, rt, tracker=tracker)
        assert tracker.current_bytes == cg.nbytes

    def test_upper_bound_is_actually_an_upper_bound(self, family_graph):
        cg = compress_graph(family_graph)
        bound = compressed_size_upper_bound(
            family_graph.degrees, family_graph.has_edge_weights
        )
        assert len(cg.data) <= bound


class TestIOTimeModel:
    def test_sequential_compression_dominates(self):
        """eu-2015 story: 1 core compressing is ~5x slower than plain I/O."""
        nbytes = 640e9
        t_plain = io_time_model(nbytes, 1, compress=False)
        t_comp = io_time_model(nbytes, 1, compress=True)
        assert t_comp > 3 * t_plain

    def test_parallel_compression_hides_behind_disk(self):
        nbytes = 640e9
        t_plain = io_time_model(nbytes, 96, compress=False)
        t_comp = io_time_model(nbytes, 96, compress=True)
        assert t_comp < 1.1 * t_plain

    def test_monotone_in_cores(self):
        times = [io_time_model(1e12, p, compress=True) for p in (1, 4, 16, 96)]
        assert times == sorted(times, reverse=True)
