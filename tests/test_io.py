"""Tests for binary / METIS I/O and streaming compression."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.builder import from_edges
from repro.graph.compressed import compress_graph, decompress_graph
from repro.graph.io import (
    read_binary,
    read_metis,
    roundtrip_text,
    stream_compressed,
    write_binary,
    write_metis,
)

from conftest import graphs_equal


class TestBinary:
    def test_roundtrip(self, tmp_path, family_graph):
        path = tmp_path / "g.bin"
        write_binary(family_graph, path)
        assert graphs_equal(read_binary(path), family_graph)

    def test_roundtrip_weighted(self, tmp_path, text_graph):
        path = tmp_path / "g.bin"
        write_binary(text_graph, path)
        g2 = read_binary(path)
        assert g2.has_edge_weights
        assert graphs_equal(g2, text_graph)

    def test_roundtrip_vertex_weights(self, tmp_path):
        g = from_edges(3, np.array([[0, 1], [1, 2]]), vwgt=np.array([4, 5, 6]))
        path = tmp_path / "g.bin"
        write_binary(g, path)
        assert graphs_equal(read_binary(path), g)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 60)
        with pytest.raises(ValueError, match="magic"):
            read_binary(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"TP")
        with pytest.raises(ValueError, match="truncated"):
            read_binary(path)


class TestStreamCompressed:
    def test_streaming_matches_in_memory_compression(self, tmp_path, web_graph):
        path = tmp_path / "g.bin"
        write_binary(web_graph, path)
        cg_stream = stream_compressed(path, packet_edges=256)
        cg_mem = compress_graph(web_graph)
        assert cg_stream.data == cg_mem.data
        assert np.array_equal(cg_stream.offsets, cg_mem.offsets)

    def test_streamed_graph_decodes_correctly(self, tmp_path, grid_graph):
        path = tmp_path / "g.bin"
        write_binary(grid_graph, path)
        cg = stream_compressed(path)
        assert graphs_equal(decompress_graph(cg), grid_graph)

    def test_streaming_weighted(self, tmp_path, text_graph):
        path = tmp_path / "g.bin"
        write_binary(text_graph, path)
        cg = stream_compressed(path, packet_edges=100)
        assert graphs_equal(decompress_graph(cg), text_graph)
        assert cg.total_edge_weight == text_graph.total_edge_weight

    def test_tiny_packets(self, tmp_path, tiny_graph):
        path = tmp_path / "g.bin"
        write_binary(tiny_graph, path)
        cg = stream_compressed(path, packet_edges=1)
        assert graphs_equal(decompress_graph(cg), tiny_graph)


class TestMetis:
    def test_text_roundtrip(self, family_graph):
        assert graphs_equal(roundtrip_text(family_graph), family_graph)

    def test_file_roundtrip(self, tmp_path, tiny_graph):
        path = tmp_path / "g.metis"
        write_metis(tiny_graph, path)
        assert graphs_equal(read_metis(path), tiny_graph)

    def test_weighted_text_roundtrip(self, text_graph):
        assert graphs_equal(roundtrip_text(text_graph), text_graph)

    def test_vertex_weighted_roundtrip(self, tmp_path):
        g = from_edges(3, np.array([[0, 1], [1, 2]]), vwgt=np.array([4, 5, 6]))
        path = tmp_path / "g.metis"
        write_metis(g, path)
        g2 = read_metis(path)
        assert graphs_equal(g2, g)

    def test_header_mismatch_detected(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("2 5\n2\n1\n")  # claims 5 edges, has 1
        with pytest.raises(ValueError, match="header"):
            read_metis(path)

    def test_one_indexing(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1\n2\n1\n")
        g = read_metis(path)
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(1).tolist() == [0]
