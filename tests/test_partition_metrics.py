"""Tests for PartitionedGraph metrics and invariants."""

import numpy as np
import pytest

from repro.core.partition import PartitionedGraph, max_block_weight
from repro.graph.builder import from_edges
from repro.graph.compressed import compress_graph


class TestMaxBlockWeight:
    def test_formula(self):
        # (1+eps) * ceil(total/k)
        assert max_block_weight(100, 4, 0.03) == int(1.03 * 25)
        assert max_block_weight(101, 4, 0.0) == 26

    def test_k1(self):
        assert max_block_weight(100, 1, 0.03) >= 100


class TestPartitionedGraph:
    def test_cut_weight_manual(self, tiny_graph):
        pg = PartitionedGraph(
            tiny_graph, 2, np.array([0, 0, 0, 1, 1, 1], dtype=np.int32)
        )
        assert pg.cut_weight() == 1  # only edge (2,3) crosses

    def test_cut_weight_weighted(self, weighted_graph):
        pg = PartitionedGraph(
            weighted_graph, 2, np.array([0, 1, 0, 1], dtype=np.int32)
        )
        # crossing edges: (0,1)=5, (2,3)=5, (0,3)=1, (1,2)=1 -> 12
        assert pg.cut_weight() == 12

    def test_cut_weight_compressed_matches_csr(self, web_graph):
        part = np.random.default_rng(0).integers(0, 4, size=web_graph.n).astype(np.int32)
        pg_csr = PartitionedGraph(web_graph, 4, part.copy())
        pg_cmp = PartitionedGraph(compress_graph(web_graph), 4, part.copy())
        assert pg_csr.cut_weight() == pg_cmp.cut_weight()

    def test_block_weights_incremental(self, tiny_graph):
        pg = PartitionedGraph(
            tiny_graph, 2, np.array([0, 0, 0, 1, 1, 1], dtype=np.int32)
        )
        pg.move(0, 1)
        assert pg.block_weights.tolist() == [2, 4]
        pg.validate()
        pg.move(0, 1)  # no-op move
        assert pg.block_weights.tolist() == [2, 4]

    def test_imbalance(self, tiny_graph):
        pg = PartitionedGraph(
            tiny_graph, 2, np.array([0, 0, 0, 0, 1, 1], dtype=np.int32)
        )
        assert pg.imbalance() == pytest.approx(4 / 3 - 1)

    def test_is_balanced(self, tiny_graph):
        pg = PartitionedGraph(
            tiny_graph, 2, np.array([0, 0, 0, 1, 1, 1], dtype=np.int32)
        )
        assert pg.is_balanced(0.0)
        pg.move(3, 0)
        assert not pg.is_balanced(0.03)

    def test_boundary_vertices(self, tiny_graph):
        pg = PartitionedGraph(
            tiny_graph, 2, np.array([0, 0, 0, 1, 1, 1], dtype=np.int32)
        )
        assert pg.boundary_vertices().tolist() == [2, 3]

    def test_boundary_compressed_matches(self, web_graph):
        part = np.random.default_rng(1).integers(0, 3, size=web_graph.n).astype(np.int32)
        b_csr = PartitionedGraph(web_graph, 3, part.copy()).boundary_vertices()
        b_cmp = PartitionedGraph(
            compress_graph(web_graph), 3, part.copy()
        ).boundary_vertices()
        assert np.array_equal(np.sort(b_csr), np.sort(b_cmp))

    def test_cut_fraction(self, tiny_graph):
        pg = PartitionedGraph(
            tiny_graph, 2, np.array([0, 0, 0, 1, 1, 1], dtype=np.int32)
        )
        assert pg.cut_fraction() == pytest.approx(1 / 7)

    def test_nonempty_blocks(self, tiny_graph):
        pg = PartitionedGraph(tiny_graph, 4, np.zeros(6, dtype=np.int32))
        assert pg.nonempty_blocks() == 1

    def test_rejects_bad_partition(self, tiny_graph):
        with pytest.raises(ValueError):
            PartitionedGraph(tiny_graph, 2, np.array([0, 0, 0, 1, 1, 5]))
        with pytest.raises(ValueError):
            PartitionedGraph(tiny_graph, 2, np.array([0, 0, 0]))
        with pytest.raises(ValueError):
            PartitionedGraph(tiny_graph, 0, np.zeros(6, dtype=np.int32))

    def test_validate_detects_desync(self, tiny_graph):
        pg = PartitionedGraph(tiny_graph, 2, np.zeros(6, dtype=np.int32))
        pg.block_weights[0] = 999
        with pytest.raises(AssertionError):
            pg.validate()

    def test_copy_is_independent(self, tiny_graph):
        pg = PartitionedGraph(tiny_graph, 2, np.zeros(6, dtype=np.int32))
        cp = pg.copy()
        cp.move(0, 1)
        assert pg.block(0) == 0
        assert cp.block(0) == 1

    def test_vertex_weights_in_block_weights(self):
        g = from_edges(
            3, np.array([[0, 1], [1, 2]]), vwgt=np.array([10, 20, 30])
        )
        pg = PartitionedGraph(g, 2, np.array([0, 1, 1], dtype=np.int32))
        assert pg.block_weights.tolist() == [10, 50]
