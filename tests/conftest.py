"""Shared fixtures: small graphs of every family used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.builder import from_edges


@pytest.fixture
def tiny_graph():
    """A hand-checkable 6-vertex graph: two triangles joined by one edge."""
    edges = np.array(
        [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5], [2, 3]], dtype=np.int64
    )
    return from_edges(6, edges)


@pytest.fixture
def weighted_graph():
    edges = np.array([[0, 1], [1, 2], [2, 3], [3, 0], [0, 2]], dtype=np.int64)
    weights = np.array([5, 1, 5, 1, 10], dtype=np.int64)
    return from_edges(4, edges, weights)


@pytest.fixture
def grid_graph():
    return gen.grid2d(12, 12)


@pytest.fixture
def web_graph():
    return gen.weblike(800, avg_degree=12, seed=7)


@pytest.fixture
def rgg_graph():
    return gen.rgg2d(600, avg_degree=8, seed=11)


@pytest.fixture
def rhg_graph():
    return gen.rhg(600, avg_degree=8, gamma=3.0, seed=13)


@pytest.fixture
def kmer_graph():
    return gen.kmer(500, degree=4, seed=17)


@pytest.fixture
def text_graph():
    return gen.textlike(400, seed=19)


@pytest.fixture(
    params=["grid", "web", "rgg", "kmer", "text"],
)
def family_graph(request, grid_graph, web_graph, rgg_graph, kmer_graph, text_graph):
    """Parametrized across structurally different families."""
    return {
        "grid": grid_graph,
        "web": web_graph,
        "rgg": rgg_graph,
        "kmer": kmer_graph,
        "text": text_graph,
    }[request.param]


def graphs_equal(a, b) -> bool:
    """Structural equality of two graphs via the neighborhood protocol."""
    if a.n != b.n or a.m != b.m:
        return False
    for u in range(a.n):
        na, wa = a.neighbors_and_weights(u)
        nb, wb = b.neighbors_and_weights(u)
        oa = np.argsort(np.asarray(na), kind="stable")
        ob = np.argsort(np.asarray(nb), kind="stable")
        if not np.array_equal(np.asarray(na)[oa], np.asarray(nb)[ob]):
            return False
        if not np.array_equal(np.asarray(wa)[oa], np.asarray(wb)[ob]):
            return False
    if not np.array_equal(np.asarray(a.vwgt), np.asarray(b.vwgt)):
        return False
    return True


def canonical_graph_signature(g) -> bytes:
    """Isomorphism-invariant-ish signature under vertex relabeling by
    (sorted weighted degree sequence + sorted edge multiset after canonical
    relabel).  Used to compare contraction variants that relabel vertices:
    we relabel both graphs by sorting vertices on (vertex weight, weighted
    degree, neighbor multiset hash) -- sufficient for the deterministic test
    graphs used here.
    """
    import hashlib

    n = g.n
    rows = []
    for u in range(n):
        nbrs, wgts = g.neighbors_and_weights(u)
        o = np.argsort(np.asarray(nbrs), kind="stable")
        rows.append(
            (
                int(g.vwgt[u]),
                int(np.asarray(wgts).sum()),
                len(nbrs),
            )
        )
    h = hashlib.sha256()
    for r in sorted(rows):
        h.update(repr(r).encode())
    return h.digest()
