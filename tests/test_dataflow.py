"""Tests for the flow-sensitive dataflow engine (repro.analysis.dataflow).

Covers the CFG builder (shapes for the structured-control constructs the
passes rely on), the worklist fixpoint solver (convergence, unreachable
code, the non-monotone safety valve), the environment join, the escape
analysis verdicts, and the one-level call-graph summaries.
"""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.analysis.core import Module
from repro.analysis.dataflow import (
    ESCAPES,
    LOCAL,
    REGISTERED,
    UNKNOWN,
    ModuleSummaries,
    analyze_function,
    build_cfg,
    fixpoint,
    join_env,
)


def _mod(src: str) -> Module:
    src = textwrap.dedent(src)
    return Module(Path("synthetic.py"), src, "synthetic.py")


def _fn(src: str, name: str | None = None) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(src))
    fns = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if name is None:
        return fns[0]
    return next(f for f in fns if f.name == name)


def _reachable(cfg):
    seen = set()
    stack = [cfg.entry]
    while stack:
        b = stack.pop()
        if b.bid in seen:
            continue
        seen.add(b.bid)
        stack.extend(b.succs)
    return seen


# --------------------------------------------------------------------- #
# CFG shapes
# --------------------------------------------------------------------- #
class TestCFGShapes:
    def test_straight_line(self):
        cfg = build_cfg(_fn("def f():\n    x = 1\n    return x\n"))
        assert cfg.entry.stmts == []
        assert cfg.exit.bid in _reachable(cfg)
        # the lone body block falls through to exit via the return
        body = cfg.block_of[cfg.func.body[0]]
        assert cfg.exit in body.succs

    def test_if_else_diamond(self):
        fn = _fn(
            """
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        cfg = build_cfg(fn)
        if_stmt = fn.body[0]
        then_block = cfg.block_of[if_stmt.body[0]]
        else_block = cfg.block_of[if_stmt.orelse[0]]
        merge_block = cfg.block_of[fn.body[1]]
        assert then_block is not else_block
        assert merge_block in then_block.succs
        assert merge_block in else_block.succs
        dom = cfg.dominators()
        # entry dominates everything reachable; neither branch dominates
        # the merge
        for bid in _reachable(cfg):
            assert cfg.entry.bid in dom[bid]
        assert not cfg.dominates(dom, then_block, merge_block)
        assert not cfg.dominates(dom, else_block, merge_block)

    def test_while_loop_back_edge(self):
        fn = _fn(
            """
            def f(n):
                i = 0
                while i < n:
                    i = i + 1
                return i
            """
        )
        cfg = build_cfg(fn)
        header = cfg.block_of[fn.body[1]]
        body = cfg.block_of[fn.body[1].body[0]]
        assert header in body.succs  # the back edge
        assert cfg.block_of[fn.body[2]] in header.succs  # the loop exit

    def test_for_loop_shape(self):
        fn = _fn(
            """
            def f(xs):
                acc = 0
                for x in xs:
                    acc = acc + x
                return acc
            """
        )
        cfg = build_cfg(fn)
        header = cfg.block_of[fn.body[1]]
        body = cfg.block_of[fn.body[1].body[0]]
        assert header in body.succs
        assert cfg.block_of[fn.body[2]].bid in _reachable(cfg)

    def test_early_return_unreachable_tail(self):
        fn = _fn(
            """
            def f(c):
                if c:
                    return 1
                return 2
            """
        )
        cfg = build_cfg(fn)
        then_block = cfg.block_of[fn.body[0].body[0]]
        assert then_block.succs == [cfg.exit]

    def test_try_body_reaches_handler(self):
        fn = _fn(
            """
            def f():
                try:
                    x = risky()
                except ValueError:
                    x = None
                return x
            """
        )
        cfg = build_cfg(fn)
        body = cfg.block_of[fn.body[0].body[0]]
        handler = cfg.block_of[fn.body[0].handlers[0].body[0]]
        # over-approximation: the body block may jump to the handler
        assert handler.bid in {s.bid for s in body.succs}
        assert cfg.block_of[fn.body[1]].bid in _reachable(cfg)

    def test_rpo_starts_at_entry(self):
        fn = _fn("def f(c):\n    if c:\n        x = 1\n    return 0\n")
        cfg = build_cfg(fn)
        order = cfg.rpo()
        assert order[0] is cfg.entry
        seen = {b.bid for b in order}
        assert seen == {b.bid for b in cfg.blocks}


# --------------------------------------------------------------------- #
# fixpoint solver
# --------------------------------------------------------------------- #
class TestFixpoint:
    def _const_transfer(self, block, env):
        env = dict(env)
        for stmt in block.stmts:
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Constant
            ):
                env[stmt.targets[0].id] = stmt.value.value
        return env

    def test_diamond_join_drops_conflicts(self):
        fn = _fn(
            """
            def f(c):
                a = 7
                if c:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        cfg = build_cfg(fn)
        ins, outs = fixpoint(cfg, self._const_transfer, {}, join_env)
        merge = cfg.block_of[fn.body[2]]
        assert ins[merge.bid]["a"] == 7  # agreed on both paths
        assert "x" not in ins[merge.bid]  # conflicting constants drop

    def test_loop_converges(self):
        fn = _fn(
            """
            def f(n):
                x = 5
                while n:
                    x = 5
                return x
            """
        )
        cfg = build_cfg(fn)
        ins, outs = fixpoint(cfg, self._const_transfer, {}, join_env)
        assert ins[cfg.exit.bid]["x"] == 5

    def test_unreachable_blocks_stay_none(self):
        fn = _fn(
            """
            def f():
                return 1
                x = 2
            """
        )
        cfg = build_cfg(fn)
        ins, outs = fixpoint(cfg, self._const_transfer, {}, join_env)
        dead = cfg.block_of[fn.body[1]]
        assert ins[dead.bid] is None and outs[dead.bid] is None

    def test_non_monotone_transfer_raises(self):
        fn = _fn("def f(n):\n    while n:\n        n = n\n    return n\n")
        cfg = build_cfg(fn)

        def widen_forever(block, env):
            return {"i": env.get("i", 0) + 1}  # never stabilises

        def keep_max(a, b):
            return {"i": max(a.get("i", 0), b.get("i", 0))}

        with pytest.raises(RuntimeError, match="converge"):
            fixpoint(cfg, widen_forever, {}, keep_max)


class TestJoinEnv:
    def test_agreement_and_conflict(self):
        assert join_env({"a": 1, "b": 2}, {"a": 1, "b": 3}) == {"a": 1}

    def test_missing_keys_drop(self):
        assert join_env({"a": 1}, {}) == {}

    def test_custom_join_merges(self):
        out = join_env({"a": 1}, {"a": 2}, join_val=max)
        assert out == {"a": 2}

    def test_custom_join_none_drops(self):
        out = join_env({"a": 1}, {"a": 2}, join_val=lambda x, y: None)
        assert out == {}


# --------------------------------------------------------------------- #
# escape analysis
# --------------------------------------------------------------------- #
class TestEscape:
    def _verdicts(self, src: str, name: str | None = None):
        mod = _mod(src)
        # the analysis matches nodes by identity, so take the function
        # from the module's own tree
        fns = [n for n in mod.tree.body if isinstance(n, ast.FunctionDef)]
        fn = fns[0] if name is None else next(f for f in fns if f.name == name)
        result = analyze_function(mod, fn)
        return result, {
            result.verdicts[s.sid].status for s in result.sites
        }

    def test_local_buffer(self):
        _, statuses = self._verdicts(
            """
            import numpy as np

            def f(n):
                buf = np.empty(n, dtype=np.int64)
                buf[:] = 0
                return int(buf.sum())
            """
        )
        assert statuses == {LOCAL}

    def test_return_escapes(self):
        _, statuses = self._verdicts(
            """
            import numpy as np

            def f(n):
                buf = np.zeros(n, dtype=np.int64)
                return buf
            """
        )
        assert statuses == {ESCAPES}

    def test_attribute_store_escapes(self):
        _, statuses = self._verdicts(
            """
            import numpy as np

            def f(self, n):
                self.buf = np.zeros(n, dtype=np.int64)
            """
        )
        assert statuses == {ESCAPES}

    def test_unknown_callee(self):
        _, statuses = self._verdicts(
            """
            import numpy as np
            from elsewhere import sink

            def f(n):
                buf = np.zeros(n, dtype=np.int64)
                sink(buf)
            """
        )
        assert statuses == {UNKNOWN}

    def test_ledger_charge_registered(self):
        # a plain numpy buffer whose bytes reach the ledger is registered;
        # direct tracked_* calls never even become sites
        _, statuses = self._verdicts(
            """
            import numpy as np

            def f(tracker, n):
                buf = np.empty(n, dtype=np.int64)
                tracker.alloc("fixture", buf.nbytes, "scratch")
                return buf
            """
        )
        assert statuses == {REGISTERED}

    def test_tracked_constructor_is_not_a_site(self):
        result, statuses = self._verdicts(
            """
            import numpy as np
            from repro.memory.scratch import tracked_zeros

            def f(n):
                buf = tracked_zeros(n, np.int64, name="t")
                return buf
            """
        )
        assert result.sites == [] and statuses == set()

    def test_param_escape_summary(self):
        result, _ = self._verdicts(
            """
            def f(self, buf):
                self.cache = buf
            """
        )
        assert result.param_escape.get("buf") == ESCAPES


# --------------------------------------------------------------------- #
# call-graph summaries
# --------------------------------------------------------------------- #
class TestCallGraph:
    SRC = """
        import numpy as np

        def stash(state, buf):
            state.buf = buf

        def harmless(buf):
            return int(buf.sum())

        def caller_stashes(state, n):
            b = np.zeros(n, dtype=np.int64)
            stash(state, b)

        def caller_sums(n):
            b = np.zeros(n, dtype=np.int64)
            return harmless(b)
        """

    def _analyze(self, name: str):
        mod = _mod(self.SRC)
        summaries = ModuleSummaries(mod)
        fn = next(
            f
            for f in mod.tree.body
            if isinstance(f, ast.FunctionDef) and f.name == name
        )
        return analyze_function(mod, fn, summaries=summaries)

    def test_summary_lookup(self):
        mod = _mod(self.SRC)
        summaries = ModuleSummaries(mod)
        s = summaries.param_escape("stash")
        assert s is not None
        assert s["params"] == ["state", "buf"]
        assert s["escape"].get("buf") == ESCAPES
        assert summaries.param_escape("np") is None
        assert summaries.param_escape("not_a_function") is None

    def test_escape_through_callee(self):
        result = self._analyze("caller_stashes")
        statuses = {result.verdicts[s.sid].status for s in result.sites}
        assert statuses == {ESCAPES}

    def test_local_through_harmless_callee(self):
        # the callee only reads its parameter, so the buffer stays local
        result = self._analyze("caller_sums")
        statuses = {result.verdicts[s.sid].status for s in result.sites}
        assert statuses == {LOCAL}
