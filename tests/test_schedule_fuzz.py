"""Schedule-fuzzed race detection and differential equivalence tests.

The acceptance bar from the verify-layer issue:

* the conflict detector reports **zero** conflicts for two-phase LP and
  one-pass contraction across 16 seeded schedules at p in {2, 4, 8};
* a deliberately injected race (cluster-weight updates with the CAS loop
  disabled) is caught under at least one fuzzed schedule;
* the paper's equivalence claims (two-phase LP == classic LP, one-pass ==
  buffered contraction, sparse == full gain table) hold under every fuzzed
  schedule, not just the default issue order.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core.coarsening.contraction import contract_buffered
from repro.core.coarsening.lp_clustering import label_propagation_clustering
from repro.core.coarsening.one_pass_contraction import contract_one_pass
from repro.core.partition import PartitionedGraph
from repro.core.refinement.gain_table import (
    FullGainTable,
    NoGainTable,
    SparseGainTable,
)
from repro.graph import generators as gen
from repro.graph.io import write_binary
from repro.verify.fuzz import (
    _make_ctx,
    canonical_coarse_form,
    fuzz_clustering,
    fuzz_contraction,
    summarize,
)

DIFF_SEEDS = range(8)
DIFF_PS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def graph():
    return gen.rgg2d(350, avg_degree=8, seed=4)


@pytest.fixture(scope="module")
def web():
    return gen.weblike(300, avg_degree=6, seed=4)


def _lp(graph, *, two_phase, p, seed, policy="random"):
    ctx, det = _make_ctx(
        graph, p=p, policy=policy, seed=seed, chunk_size=32, two_phase=two_phase
    )
    res = label_propagation_clustering(
        graph, ctx, max(1, graph.total_vertex_weight // 8)
    )
    assert det.clean, det.summary()
    return res


# --------------------------------------------------------------------- #
# acceptance criteria
# --------------------------------------------------------------------- #
class TestAcceptance:
    def test_two_phase_lp_clean_across_16_schedules(self, graph):
        cases = fuzz_clustering(
            graph, policies=("random",), seeds=range(16), ps=(2, 4, 8)
        )
        assert len(cases) == 48
        assert all(c.clean for c in cases), summarize(cases)

    def test_one_pass_contraction_clean_across_16_schedules(self, graph):
        cases = fuzz_contraction(
            graph, policies=("random",), seeds=range(16), ps=(2, 4, 8)
        )
        assert len(cases) == 48
        assert all(c.clean for c in cases), summarize(cases)

    def test_adversarial_policies_also_clean(self, web):
        cases = fuzz_clustering(
            web,
            policies=("issue", "reversed", "heavy-first"),
            seeds=(0,),
            ps=(4,),
        ) + fuzz_contraction(
            web,
            policies=("issue", "reversed", "heavy-first"),
            seeds=(0,),
            ps=(4,),
        )
        assert all(c.clean for c in cases), summarize(cases)

    def test_injected_race_is_caught(self, graph):
        cases = fuzz_clustering(
            graph,
            policies=("random", "reversed"),
            seeds=range(2),
            ps=(2, 4),
            inject_race=True,
        )
        dirty = [c for c in cases if not c.clean]
        assert dirty, "CAS-disabled cluster-weight updates went undetected"
        conflicts = [c for case in dirty for c in case.conflicts]
        assert any(c.array == "cluster-weights" for c in conflicts)
        assert {c.kind for c in conflicts} <= {"write-write", "read-write"}
        # the report names the owning phase and the contended index
        sample = next(c for c in conflicts if c.array == "cluster-weights")
        assert "clustering" in sample.phase
        assert len(sample.tids) == 2 and sample.tids[0] != sample.tids[1]

    def test_clean_run_with_cas_reports_no_race(self, graph):
        # same matrix as the injection test, CAS enabled: zero conflicts
        cases = fuzz_clustering(
            graph, policies=("random", "reversed"), seeds=range(2), ps=(2, 4)
        )
        assert all(c.clean for c in cases), summarize(cases)


# --------------------------------------------------------------------- #
# differential equivalence under fuzzed schedules (satellite 2)
# --------------------------------------------------------------------- #
class TestTwoPhaseLPEquivalence:
    @pytest.mark.parametrize("p", DIFF_PS)
    def test_identical_clusters_across_seeds(self, graph, p):
        for seed in DIFF_SEEDS:
            a = _lp(graph, two_phase=True, p=p, seed=seed)
            b = _lp(graph, two_phase=False, p=p, seed=seed)
            assert np.array_equal(a.clusters, b.clusters), (
                f"two-phase and classic LP diverge at p={p}, seed={seed}"
            )
            assert np.array_equal(a.cluster_weights, b.cluster_weights)

    def test_equivalence_on_skewed_degrees(self, web):
        # weblike graphs actually exercise the bump path of two-phase LP
        for seed in DIFF_SEEDS:
            a = _lp(web, two_phase=True, p=4, seed=seed)
            b = _lp(web, two_phase=False, p=4, seed=seed)
            assert np.array_equal(a.clusters, b.clusters)


class TestContractionEquivalence:
    @pytest.mark.parametrize("p", DIFF_PS)
    def test_one_pass_isomorphic_to_buffered(self, graph, p):
        base_ctx, _ = _make_ctx(graph, p=4, policy="issue", seed=0, chunk_size=32)
        base_ctx.runtime.detach_detector()
        clu = label_propagation_clustering(
            graph, base_ctx, max(1, graph.total_vertex_weight // 8)
        )
        ref_ctx, _ = _make_ctx(graph, p=4, policy="issue", seed=0, chunk_size=32)
        ref_ctx.runtime.detach_detector()
        ref = contract_buffered(graph, clu.clusters, clu.cluster_weights, ref_ctx)
        ref_form = canonical_coarse_form(graph.n, ref.coarse, ref.fine_to_coarse)
        for seed in DIFF_SEEDS:
            ctx, det = _make_ctx(
                graph, p=p, policy="random", seed=seed, chunk_size=32
            )
            out = contract_one_pass(
                graph, clu.clusters, clu.cluster_weights, ctx
            )
            assert det.clean, det.summary()
            form = canonical_coarse_form(graph.n, out.coarse, out.fine_to_coarse)
            assert form == ref_form, (
                f"one-pass contraction not isomorphic to buffered at "
                f"p={p}, seed={seed}"
            )


class TestGainTableEquivalence:
    @pytest.mark.parametrize("p", DIFF_PS)
    def test_sparse_equals_full_after_move_traces(self, graph, p):
        k = 2 * p  # scale block count with the thread sweep
        for seed in DIFF_SEEDS:
            rng = np.random.default_rng([seed, p])
            part = rng.integers(0, k, size=graph.n).astype(np.int32)
            pg_full = PartitionedGraph(graph, k, part.copy())
            pg_sparse = PartitionedGraph(graph, k, part.copy())
            pg_ref = PartitionedGraph(graph, k, part.copy())
            full = FullGainTable(pg_full)
            sparse = SparseGainTable(pg_sparse)
            ref = NoGainTable(pg_ref)
            for _ in range(40):
                u = int(rng.integers(graph.n))
                src = int(pg_full.partition[u])
                dst = int((src + 1 + rng.integers(k - 1)) % k)
                for pg, table in (
                    (pg_full, full),
                    (pg_sparse, sparse),
                    (pg_ref, ref),
                ):
                    pg.move(u, dst)
                    table.apply_move(u, src, dst)
            probe = rng.choice(graph.n, size=min(64, graph.n), replace=False)
            for u in probe.tolist():
                bf = set(full.adjacent_blocks(u).tolist())
                bs = set(sparse.adjacent_blocks(u).tolist())
                br = set(ref.adjacent_blocks(u).tolist())
                assert bf == bs == br, f"adjacent blocks diverge at vertex {u}"
                for b in bf:
                    assert (
                        full.affinity(u, b)
                        == sparse.affinity(u, b)
                        == ref.affinity(u, b)
                    ), f"affinity diverges at vertex {u}, block {b}"


# --------------------------------------------------------------------- #
# CLI selfcheck end-to-end
# --------------------------------------------------------------------- #
class TestSelfcheckCli:
    @pytest.fixture
    def graph_file(self, tmp_path):
        g = gen.rgg2d(400, 8.0, seed=1)
        path = tmp_path / "g.bin"
        write_binary(g, path)
        return path

    def test_selfcheck_clean_run(self, graph_file, capsys):
        rc = main(["partition", str(graph_file), "-k", "4", "--selfcheck"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "selfcheck:" in out
        assert "0 conflicts" in out
        assert "invariant checks ok" in out

    def test_selfcheck_with_fuzzed_schedule(self, graph_file, capsys):
        rc = main(
            [
                "partition",
                str(graph_file),
                "-k",
                "4",
                "--selfcheck",
                "--schedule-policy",
                "random",
                "--schedule-seed",
                "7",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "schedule random, seed 7" in out

    def test_schedule_policy_without_selfcheck(self, graph_file, capsys):
        rc = main(
            [
                "partition",
                str(graph_file),
                "-k",
                "4",
                "--schedule-policy",
                "reversed",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "balanced: True" in out
