"""End-to-end tests of the multilevel driver across all presets."""

import numpy as np
import pytest

import repro
from repro.core import config as C
from repro.graph import generators as gen
from repro.graph.compressed import compress_graph
from repro.memory import MemoryTracker

PRESETS = list(C.PRESETS)


@pytest.fixture(scope="module")
def medium_rgg():
    return gen.rgg2d(1500, avg_degree=8, seed=21)


@pytest.fixture(scope="module")
def medium_web():
    return gen.weblike(1500, avg_degree=12, seed=22)


class TestEndToEnd:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_all_presets_produce_balanced_partitions(self, medium_rgg, preset):
        r = repro.partition(medium_rgg, 8, C.preset(preset, seed=1))
        assert r.balanced, f"{preset} violated balance: {r.imbalance}"
        assert r.pgraph.nonempty_blocks() == 8
        r.pgraph.validate()

    @pytest.mark.parametrize("k", [2, 5, 16, 31])
    def test_various_k(self, medium_rgg, k):
        r = repro.partition(medium_rgg, k, C.terapart(seed=2))
        assert r.balanced
        assert r.pgraph.nonempty_blocks() == k

    def test_k1_trivial(self, medium_rgg):
        r = repro.partition(medium_rgg, 1, C.terapart(seed=3))
        assert r.cut == 0
        assert r.balanced

    def test_multilevel_beats_flat_random(self, medium_rgg):
        r = repro.partition(medium_rgg, 8, C.terapart(seed=4))
        rng = np.random.default_rng(0)
        from repro.core.partition import PartitionedGraph

        rand_cut = PartitionedGraph(
            medium_rgg, 8, rng.integers(0, 8, size=medium_rgg.n).astype(np.int32)
        ).cut_weight()
        assert r.cut < rand_cut / 3

    def test_quality_parity_terapart_vs_kaminpar(self, medium_rgg):
        """The paper: optimizations do not affect solution quality (within
        a small tolerance over seeds)."""
        cuts_k = [
            repro.partition(medium_rgg, 8, C.kaminpar(seed=s)).cut
            for s in range(3)
        ]
        cuts_t = [
            repro.partition(medium_rgg, 8, C.terapart(seed=s)).cut
            for s in range(3)
        ]
        assert np.mean(cuts_t) < 1.15 * np.mean(cuts_k)
        assert np.mean(cuts_k) < 1.15 * np.mean(cuts_t)

    def test_fm_improves_over_lp(self, medium_web):
        cut_lp = np.mean(
            [repro.partition(medium_web, 8, C.terapart(seed=s)).cut for s in range(2)]
        )
        cut_fm = np.mean(
            [
                repro.partition(medium_web, 8, C.terapart_fm(seed=s)).cut
                for s in range(2)
            ]
        )
        assert cut_fm <= cut_lp

    def test_accepts_precompressed_graph(self, medium_web):
        cg = compress_graph(medium_web)
        r = repro.partition(cg, 4, C.terapart(seed=5))
        assert r.balanced
        assert len(r.partition) == medium_web.n

    def test_deterministic_given_seed(self, medium_rgg):
        r1 = repro.partition(medium_rgg, 8, C.terapart(seed=6))
        r2 = repro.partition(medium_rgg, 8, C.terapart(seed=6))
        assert np.array_equal(r1.partition, r2.partition)
        assert r1.cut == r2.cut

    def test_different_seeds_differ(self, medium_rgg):
        r1 = repro.partition(medium_rgg, 8, C.terapart(seed=7))
        r2 = repro.partition(medium_rgg, 8, C.terapart(seed=8))
        assert not np.array_equal(r1.partition, r2.partition)


class TestMemoryBehaviour:
    def test_terapart_uses_less_memory_than_kaminpar(self, medium_web):
        """The paper's headline (Fig. 1/4/6), at p=96."""
        peak = {}
        for preset in ("kaminpar", "terapart"):
            r = repro.partition(medium_web, 16, C.preset(preset, seed=1, p=96))
            peak[preset] = r.peak_bytes
        assert peak["terapart"] < peak["kaminpar"] / 2

    def test_optimization_ladder_monotone(self, medium_web):
        """Each enabled optimization reduces peak memory (Fig. 1)."""
        ladder = [
            "kaminpar",
            "kaminpar+2lp",
            "kaminpar+2lp+compress",
            "terapart",
        ]
        peaks = [
            repro.partition(medium_web, 16, C.preset(nm, seed=2, p=96)).peak_bytes
            for nm in ladder
        ]
        for a, b in zip(peaks, peaks[1:]):
            assert b <= a * 1.05, (ladder, peaks)
        assert peaks[-1] < peaks[0] / 2

    def test_tracker_leak_free(self, medium_rgg):
        tracker = MemoryTracker()
        repro.partition(medium_rgg, 4, C.terapart(seed=3), tracker=tracker)
        tracker.assert_empty()

    def test_phase_peaks_recorded(self, medium_rgg):
        tracker = MemoryTracker()
        repro.partition(medium_rgg, 4, C.terapart(seed=4), tracker=tracker)
        phases = tracker.phases()
        assert any("coarsening" in p for p in phases)
        assert any("initial-partitioning" in p for p in phases)
        assert any("refinement" in p for p in phases)


class TestResultFields:
    def test_result_is_self_consistent(self, medium_rgg):
        r = repro.partition(medium_rgg, 8, C.terapart(seed=9))
        assert r.cut == r.pgraph.cut_weight()
        assert r.cut_fraction == pytest.approx(r.cut / medium_rgg.m)
        assert r.wall_seconds > 0
        assert r.modeled_seconds > 0
        assert r.config_name == "terapart"
        assert r.num_levels >= 1
        assert "initial-partitioning" in r.phase_stats


class TestEdgeCases:
    def test_empty_graph(self):
        from repro.graph.builder import from_edges

        g = from_edges(0, np.zeros((0, 2), dtype=np.int64))
        r = repro.partition(g, 1, C.terapart(seed=0))
        assert r.cut == 0

    def test_graph_without_edges(self):
        from repro.graph.builder import from_edges

        g = from_edges(20, np.zeros((0, 2), dtype=np.int64))
        r = repro.partition(g, 4, C.terapart(seed=0))
        assert r.cut == 0
        assert r.balanced

    def test_disconnected_components(self):
        from repro.graph.builder import from_edges

        parts = []
        for c in range(4):
            off = c * 10
            ring = [[off + i, off + (i + 1) % 10] for i in range(10)]
            parts.extend(ring)
        g = from_edges(40, np.array(parts))
        r = repro.partition(g, 4, C.terapart(seed=1))
        assert r.balanced

    def test_k_near_n(self):
        g = gen.grid2d(5, 5)
        r = repro.partition(g, 12, C.terapart(seed=2))
        assert r.balanced

    def test_star_graph(self):
        g = gen.star(400)
        r = repro.partition(g, 4, C.terapart(seed=3))
        assert r.balanced

    def test_weighted_graph(self, text_graph):
        r = repro.partition(text_graph, 4, C.terapart(seed=4))
        assert r.balanced
        r.pgraph.validate()
