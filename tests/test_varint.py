"""Unit + property tests for the VarInt codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.varint import (
    decode_signed_varint,
    decode_stream,
    decode_varint,
    encode_signed_varint,
    encode_stream,
    encode_varint,
    stream_len,
    varint_len,
)


class TestScalar:
    @pytest.mark.parametrize(
        "value,expected_len",
        [(0, 1), (127, 1), (128, 2), (16383, 2), (16384, 3), (2**35, 6)],
    )
    def test_length_boundaries(self, value, expected_len):
        buf = bytearray()
        n = encode_varint(value, buf)
        assert n == expected_len == len(buf) == varint_len(value)

    def test_roundtrip_examples(self):
        for v in [0, 1, 127, 128, 300, 2**20, 2**40, 2**63 - 1]:
            buf = bytearray()
            encode_varint(v, buf)
            out, pos = decode_varint(buf, 0)
            assert out == v
            assert pos == len(buf)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1, bytearray())
        with pytest.raises(ValueError):
            varint_len(-5)

    def test_corrupt_stream_detected(self):
        buf = bytes([0x80] * 11)  # continuation bits forever
        with pytest.raises(ValueError, match="too long"):
            decode_varint(buf, 0)

    def test_consecutive_values(self):
        buf = bytearray()
        values = [5, 1000, 0, 2**30]
        for v in values:
            encode_varint(v, buf)
        pos = 0
        for v in values:
            out, pos = decode_varint(buf, pos)
            assert out == v


class TestSigned:
    @pytest.mark.parametrize("v", [0, 1, -1, 63, -63, 64, -64, 2**40, -(2**40)])
    def test_roundtrip(self, v):
        buf = bytearray()
        encode_signed_varint(v, buf)
        out, pos = decode_signed_varint(buf, 0)
        assert out == v

    def test_small_magnitudes_stay_small(self):
        for v in range(-63, 64):
            buf = bytearray()
            encode_signed_varint(v, buf)
            assert len(buf) == 1


class TestStream:
    def test_stream_roundtrip(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 2**40, size=500)
        buf = bytearray()
        nbytes = encode_stream(values, buf)
        assert nbytes == len(buf)
        out, pos = decode_stream(buf, 0, len(values))
        assert np.array_equal(out, values)
        assert pos == len(buf)

    def test_stream_len_matches_encoding(self):
        rng = np.random.default_rng(4)
        for _ in range(5):
            values = rng.integers(0, 2**50, size=100)
            buf = bytearray()
            encode_stream(values, buf)
            assert stream_len(values) == len(buf)

    def test_stream_len_powers_of_two(self):
        # exact boundary behaviour around byte-length steps
        values = np.array(
            [2**k - 1 for k in range(1, 60)] + [2**k for k in range(1, 60)]
        )
        buf = bytearray()
        encode_stream(values, buf)
        assert stream_len(values) == len(buf)

    def test_empty_stream(self):
        assert stream_len(np.empty(0, dtype=np.int64)) == 0
        out, pos = decode_stream(b"", 0, 0)
        assert len(out) == 0 and pos == 0


class TestProperties:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=200)
    def test_unsigned_roundtrip(self, v):
        buf = bytearray()
        n = encode_varint(v, buf)
        out, pos = decode_varint(buf, 0)
        assert out == v and pos == n

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    @settings(max_examples=200)
    def test_signed_roundtrip(self, v):
        buf = bytearray()
        encode_signed_varint(v, buf)
        out, _ = decode_signed_varint(buf, 0)
        assert out == v

    @given(
        st.lists(st.integers(min_value=0, max_value=2**55), max_size=50)
    )
    @settings(max_examples=100)
    def test_stream_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.int64)
        buf = bytearray()
        encode_stream(arr, buf)
        assert stream_len(arr) == len(buf)
        out, _ = decode_stream(buf, 0, len(arr))
        assert np.array_equal(out, arr)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=100)
    def test_encoding_is_minimal(self, v):
        """No shorter VarInt encodes the same value (canonical encoding)."""
        assert varint_len(v) == max(1, -(-v.bit_length() // 7))
