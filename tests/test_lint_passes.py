"""Tests for the ``repro lint`` static analyzer (repro.analysis).

Each pass is exercised against a known-good and a known-bad fixture under
``tests/data/lint_fixtures``; the self-test at the bottom runs the real
gate over the installed package against the committed baseline, so any
drift between the code and ``analysis/baseline.json`` fails the suite
before it fails CI.
"""

import json
from pathlib import Path

import pytest

import repro
from repro import analysis
from repro.analysis import baseline as baseline_mod
from repro.analysis.core import fingerprint, load_module
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent
BASELINE = REPO_ROOT / "analysis" / "baseline.json"


def lint_one(path: Path, pass_id: str | None = None):
    passes = [pass_id] if pass_id else None
    return analysis.lint_paths([path], passes=passes).findings


def codes_at(findings):
    return {(f.code, f.line) for f in findings}


# --------------------------------------------------------------------- #
# pass 1: parallel access
# --------------------------------------------------------------------- #
class TestParallelAccess:
    def test_good_kernel_clean(self):
        assert lint_one(FIXTURES / "kernel_good.py") == []

    def test_bad_kernel_all_codes(self):
        findings = lint_one(FIXTURES / "kernel_bad.py", "parallel-access")
        assert codes_at(findings) == {
            ("PA001", 9),
            ("PA002", 10),
            ("PA002", 11),
            ("PA003", 12),
            ("PA005", 17),
        }
        assert all(f.pass_id == "parallel-access" for f in findings)
        assert all(f.file == "kernel_bad.py" for f in findings)

    def test_execute_without_declarations(self):
        findings = lint_one(FIXTURES / "kernel_nodecl.py", "parallel-access")
        assert codes_at(findings) == {("PA004", 6)}
        assert findings[0].severity == "warning"

    def test_injected_undeclared_write_located(self, tmp_path):
        """Acceptance: an injected undeclared write is reported with the
        exact file:line and pass ID."""
        src = (FIXTURES / "kernel_good.py").read_text().splitlines()
        marker = src.index("        nbrs = chunk")
        src.insert(marker + 1, '        rec.write("partition", chunk)')
        bad = tmp_path / "injected.py"
        bad.write_text("\n".join(src) + "\n")
        findings = lint_one(bad, "parallel-access")
        assert len(findings) == 1
        f = findings[0]
        assert (f.pass_id, f.code) == ("parallel-access", "PA001")
        assert (f.file, f.line) == ("injected.py", marker + 2)


# --------------------------------------------------------------------- #
# pass 2: untracked allocations
# --------------------------------------------------------------------- #
class TestUntrackedAlloc:
    def test_good_allocs_clean(self):
        assert lint_one(FIXTURES / "alloc_good.py") == []

    def test_bad_allocs_flagged(self):
        findings = lint_one(FIXTURES / "alloc_bad.py", "untracked-alloc")
        assert codes_at(findings) == {("UA001", 7), ("UA001", 12)}
        assert {f.subject for f in findings} == {
            "untracked:empty",
            "untracked_bytes:bytearray",
        }

    def test_out_of_scope_subpackage_skipped(self):
        # obs/ is outside the accounting-critical subpackages
        pkg = Path(repro.__file__).parent
        findings = analysis.lint_paths(
            [pkg / "obs"], passes=["untracked-alloc"]
        ).findings
        assert findings == []


# --------------------------------------------------------------------- #
# pass 3: integer width
# --------------------------------------------------------------------- #
class TestIntWidth:
    def test_guarded_and_widening_clean(self):
        assert lint_one(FIXTURES / "intwidth_good.py") == []

    def test_narrowing_flagged(self):
        findings = lint_one(FIXTURES / "intwidth_bad.py", "int-width")
        assert codes_at(findings) == {("IW001", 9), ("IW002", 15)}


# --------------------------------------------------------------------- #
# pass 4: phase discipline
# --------------------------------------------------------------------- #
class TestPhaseDiscipline:
    def test_good_phases_clean(self):
        assert lint_one(FIXTURES / "phase_good.py") == []

    def test_bad_phases_flagged(self):
        findings = lint_one(FIXTURES / "phase_bad.py", "phase-discipline")
        assert codes_at(findings) == {
            ("PH001", 5),
            ("PH002", 7),
            ("PH002", 8),
            ("PH003", 9),
            # the manually-entered span on line 8 is never closed, so the
            # flow-sensitive protocol check also fires
            ("PH004", 8),
        }

    def test_kernel_subphase_vocabulary_clean(self):
        """The bulk-kernel sub-phase names added to KNOWN_PHASES pass,
        including per-round suffixes."""
        assert lint_one(FIXTURES / "phase_kernel_good.py") == []

    def test_unknown_kernel_subphase_still_flagged(self):
        """Extending KNOWN_PHASES with the kernel sub-phases must not
        loosen PH001: near-miss spellings stay errors."""
        findings = lint_one(
            FIXTURES / "phase_kernel_bad.py", "phase-discipline"
        )
        assert codes_at(findings) == {
            ("PH001", 7),
            ("PH001", 9),
            ("PH001", 11),
        }
        assert all(f.code == "PH001" and f.severity == "error" for f in findings)

    def test_dist_vocabulary_clean(self):
        """The distributed driver's phase vocabulary (dist-* names with
        -levelN/-roundN suffixes, ghost-exchange, tracer receivers) passes."""
        assert lint_one(FIXTURES / "phase_dist_good.py") == []

    def test_unknown_dist_phase_still_flagged(self):
        """Near-miss dist spellings stay PH001 errors, including with a
        -rankN suffix (stripped by normalize_phase before the check)."""
        findings = lint_one(
            FIXTURES / "phase_dist_bad.py", "phase-discipline"
        )
        assert codes_at(findings) == {("PH001", 5), ("PH001", 6)}
        assert all(f.severity == "error" for f in findings)

    def test_rank_suffix_normalizes(self):
        from repro.obs.regress.attrib import normalize_phase

        assert normalize_phase("dist-lp-round2") == "dist-lp"
        assert normalize_phase("dist-refinement-level3") == "dist-refinement"
        assert normalize_phase("shard-load-rank7") == "shard-load"
        assert normalize_phase("ghost-exchange") == "ghost-exchange"

    def test_real_dist_spans_resolve_statically(self):
        """Every span/phase name in the distributed driver must resolve
        and land in KNOWN_PHASES -- no PH003, no PH001."""
        from repro.analysis import phases

        pkg = Path(repro.__file__).parent
        for rel in ("dist/dpartitioner.py", "dist/dlp.py"):
            mod = load_module(pkg / rel)
            assert phases.run(mod) == [], rel


# --------------------------------------------------------------------- #
# suppressions and baseline mechanics
# --------------------------------------------------------------------- #
class TestSuppression:
    def test_inline_suppression_same_line(self, tmp_path):
        f = tmp_path / "s.py"
        f.write_text(
            "import numpy as np\n"
            "def g(n):\n"
            "    return np.empty(n)"
            "  # repro-lint: ignore[untracked-alloc, buffer-lifetime]"
            " -- test fixture\n"
        )
        report = analysis.lint_paths([f])
        assert report.findings == [] and report.suppressed == 2

    def test_inline_suppression_line_above_by_code(self, tmp_path):
        f = tmp_path / "s.py"
        f.write_text(
            "import numpy as np\n"
            "def g(n):\n"
            "    # repro-lint: ignore[UA001, BL002] -- test fixture\n"
            "    return np.empty(n)\n"
        )
        report = analysis.lint_paths([f])
        assert report.findings == [] and report.suppressed == 2

    def test_skip_file(self, tmp_path):
        f = tmp_path / "s.py"
        f.write_text(
            "# repro-lint: skip-file\n"
            "import numpy as np\n"
            "def g(n):\n"
            "    return np.empty(n)\n"
        )
        assert analysis.lint_paths([f]).findings == []

    def test_unrelated_suppression_does_not_hide(self, tmp_path):
        f = tmp_path / "s.py"
        f.write_text(
            "import numpy as np\n"
            "def g(n):\n"
            "    return np.empty(n)  # repro-lint: ignore[int-width]\n"
        )
        # both the allocation pass and the lifetime pass still fire
        assert len(analysis.lint_paths([f]).findings) == 2


class TestBaseline:
    def _findings(self, path):
        return analysis.lint_paths([path]).findings

    def test_baseline_absorbs_known_findings(self, tmp_path):
        findings = self._findings(FIXTURES / "alloc_bad.py")
        bl = tmp_path / "b.json"
        baseline_mod.save(bl, findings)
        report = analysis.lint_paths([FIXTURES / "alloc_bad.py"], baseline=bl)
        assert report.new == [] and report.baselined == len(findings)

    def test_extra_occurrence_of_same_shape_is_new(self, tmp_path):
        findings = self._findings(FIXTURES / "alloc_bad.py")
        accepted = {fingerprint(f): 1 for f in findings}
        # a second allocation in the same function: same fingerprint,
        # count exceeds the accepted budget
        doubled = findings + [findings[0]]
        report = baseline_mod.apply(doubled, accepted)
        assert len(report.new) == 1

    def test_stale_entries_reported(self, tmp_path):
        bl = tmp_path / "b.json"
        baseline_mod.save(bl, self._findings(FIXTURES / "alloc_bad.py"))
        report = analysis.lint_paths([FIXTURES / "alloc_good.py"], baseline=bl)
        # alloc_bad has two sites, each flagged by both the allocation and
        # the lifetime pass -> four stale fingerprints
        assert len(report.stale_baseline) == 4

    def test_version_mismatch_rejected(self, tmp_path):
        bl = tmp_path / "b.json"
        bl.write_text(json.dumps({"version": 999, "findings": {}}))
        with pytest.raises(ValueError, match="version"):
            baseline_mod.load(bl)


# --------------------------------------------------------------------- #
# the real tree: self-test against the committed baseline
# --------------------------------------------------------------------- #
class TestSelfCheck:
    def test_package_matches_committed_baseline(self):
        """Acceptance: `repro lint --gate` exits 0 against the committed
        baseline -- lint drift must be fixed or re-baselined in the same
        change that introduces it."""
        rc = cli_main(["lint", "--gate", "--baseline", str(BASELINE)])
        assert rc == 0

    def test_gate_fails_on_new_finding(self, tmp_path):
        bad = tmp_path / "fresh.py"
        bad.write_text(
            "import numpy as np\ndef g(n):\n    return np.empty(n)\n"
        )
        rc = cli_main(
            ["lint", "--gate", "--baseline", str(BASELINE), str(bad)]
        )
        assert rc == 1

    def test_update_baseline_roundtrip(self, tmp_path):
        bl = tmp_path / "b.json"
        rc = cli_main(
            [
                "lint",
                "--update-baseline",
                "--baseline",
                str(bl),
                str(FIXTURES / "alloc_bad.py"),
            ]
        )
        assert rc == 0
        rc = cli_main(
            [
                "lint",
                "--gate",
                "--baseline",
                str(bl),
                str(FIXTURES / "alloc_bad.py"),
            ]
        )
        assert rc == 0

    def test_json_report(self, tmp_path):
        out = tmp_path / "report.json"
        cli_main(
            [
                "lint",
                "--baseline",
                str(BASELINE),
                "--json",
                str(out),
                str(FIXTURES / "kernel_bad.py"),
            ]
        )
        data = json.loads(out.read_text())
        assert data["total_findings"] == 5
        assert data["by_pass"]["parallel-access"] == 5
        assert len(data["new_findings"]) == 5

    def test_real_spans_resolve_statically(self):
        """The analyzer must fully resolve every span/phase name in the
        driver and kernels -- no PH003 escape hatch on the real tree."""
        from repro.analysis import phases

        pkg = Path(repro.__file__).parent
        for rel in (
            "core/partitioner.py",
            "core/coarsening/coarsener.py",
            "core/coarsening/lp_clustering.py",
        ):
            mod = load_module(pkg / rel)
            assert phases.run(mod) == [], rel


# --------------------------------------------------------------------- #
# pass 5: buffer lifetime / escape (flow-sensitive, DESIGN.md section 13)
# --------------------------------------------------------------------- #
class TestBufferLifetime:
    def test_good_fixture_clean_under_all_passes(self):
        assert lint_one(FIXTURES / "bufferlife_good.py") == []

    def test_bad_fixture_all_codes(self):
        findings = lint_one(FIXTURES / "bufferlife_bad.py", "buffer-lifetime")
        assert codes_at(findings) == {
            ("BL001", 9),
            ("BL002", 15),
            ("BL002", 20),
            ("BL003", 25),
        }
        by_code = {f.code: f for f in findings}
        assert by_code["BL001"].severity == "warning"
        assert by_code["BL002"].severity == "error"
        assert by_code["BL003"].severity == "warning"

    def test_bl001_names_the_tracked_constructor(self):
        findings = lint_one(FIXTURES / "bufferlife_bad.py", "buffer-lifetime")
        bl001 = next(f for f in findings if f.code == "BL001")
        assert "tracked_empty" in bl001.message

    def test_injected_escape_located(self, tmp_path):
        """Acceptance: an injected escaping allocation is caught with the
        right code, file and line."""
        bad = tmp_path / "leaky.py"
        bad.write_text(
            "import numpy as np\n"
            "\n"
            "def build(n):\n"
            "    out = np.zeros(n, dtype=np.int64)\n"
            "    return out\n"
        )
        findings = lint_one(bad, "buffer-lifetime")
        assert len(findings) == 1
        f = findings[0]
        assert f.code == "BL002" and f.line == 4 and f.file == "leaky.py"


class TestIntWidthFlow:
    def test_flow_good_clean_under_all_passes(self):
        assert lint_one(FIXTURES / "intwidth_flow_good.py") == []

    def test_flow_bad_flagged(self):
        findings = lint_one(FIXTURES / "intwidth_flow_bad.py", "int-width")
        assert codes_at(findings) == {("IW002", 14), ("IW001", 23)}


class TestSpanProtocol:
    def test_good_fixture_clean_under_all_passes(self):
        assert lint_one(FIXTURES / "phase_span_good.py") == []

    def test_open_exit_paths_flagged(self):
        findings = lint_one(FIXTURES / "phase_span_bad.py", "phase-discipline")
        ph004 = [f for f in findings if f.code == "PH004"]
        assert codes_at(ph004) == {("PH004", 8), ("PH004", 19)}
        assert all(f.severity == "error" for f in ph004)


# --------------------------------------------------------------------- #
# suppression reasons
# --------------------------------------------------------------------- #
class TestSuppressionReasons:
    def test_reasoned_suppression_not_flagged_as_bare(self, tmp_path):
        f = tmp_path / "s.py"
        f.write_text(
            "import numpy as np\n"
            "def g(n):\n"
            "    # repro-lint: ignore[UA001, BL002] -- caller frees it\n"
            "    return np.empty(n)\n"
        )
        report = analysis.lint_paths([f])
        assert report.suppressed == 2
        assert report.bare_suppressions == []

    def test_bare_suppression_still_works_but_is_listed(self, tmp_path):
        f = tmp_path / "s.py"
        f.write_text(
            "import numpy as np\n"
            "def g(n):\n"
            "    # repro-lint: ignore[UA001, BL002]\n"
            "    return np.empty(n)\n"
        )
        report = analysis.lint_paths([f])
        # grace period: the suppression still applies...
        assert report.findings == [] and report.suppressed == 2
        # ...but the bare ignore is called out for the reason migration
        assert report.bare_suppressions == ["s.py:3"]
        assert "legacy bare ignore" in analysis.render_text(report)

    def test_doc_examples_are_not_suppressions(self, tmp_path):
        f = tmp_path / "s.py"
        f.write_text(
            '"""Docs quoting ``# repro-lint: ignore[UA001]`` literally."""\n'
            "import numpy as np\n"
            "def g(n):\n"
            "    return np.empty(n)\n"
        )
        report = analysis.lint_paths([f])
        assert report.bare_suppressions == []
        assert len(report.findings) == 2  # UA001 + BL002 still fire

    def test_repo_has_no_bare_ignores_left(self):
        pkg = Path(repro.__file__).parent
        report = analysis.lint_paths([pkg])
        assert report.bare_suppressions == []

    def test_reason_text_recorded_on_module(self, tmp_path):
        f = tmp_path / "s.py"
        f.write_text(
            "x = 1  # repro-lint: ignore[UA001] -- because reasons\n"
        )
        mod = load_module(f)
        assert mod.suppression_reasons[1] == "because reasons"


# --------------------------------------------------------------------- #
# SARIF export
# --------------------------------------------------------------------- #
class TestSarif:
    def _report(self):
        return analysis.lint_paths([FIXTURES / "bufferlife_bad.py"])

    def test_structure_and_levels(self):
        from repro.analysis.sarif import SARIF_VERSION, to_sarif

        log = to_sarif(self._report(), baselined=False)
        assert log["version"] == SARIF_VERSION
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        results = run["results"]
        assert {r["ruleId"] for r in results} <= rules
        by_rule = {r["ruleId"]: r for r in results}
        assert by_rule["BL002"]["level"] == "error"
        assert by_rule["BL001"]["level"] == "warning"
        loc = by_rule["BL002"]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "bufferlife_bad.py"
        assert loc["region"]["startLine"] >= 1

    def test_fingerprints_match_baseline_identity(self):
        from repro.analysis.sarif import to_sarif

        report = self._report()
        log = to_sarif(report, baselined=False)
        prints = {
            r["partialFingerprints"]["reproLint/v1"]
            for r in log["runs"][0]["results"]
        }
        assert prints == {fingerprint(f) for f in report.findings}

    def test_cli_format_sarif(self, tmp_path, capsys):
        rc = cli_main(
            [
                "lint",
                "--baseline",
                str(BASELINE),
                "--format",
                "sarif",
                str(FIXTURES / "bufferlife_bad.py"),
            ]
        )
        assert rc == 1  # new findings, no gate
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        # four sites, each flagged by both the allocation pass and the
        # lifetime pass
        assert len(log["runs"][0]["results"]) == 8

    def test_cli_sarif_sidecar(self, tmp_path):
        out = tmp_path / "lint.sarif"
        rc = cli_main(
            [
                "lint",
                "--gate",
                "--baseline",
                str(BASELINE),
                "--sarif",
                str(out),
            ]
        )
        assert rc == 0
        log = json.loads(out.read_text())
        # a green gate exports an empty (but valid) results array
        assert log["runs"][0]["results"] == []


# --------------------------------------------------------------------- #
# engine vs runtime: the static verdicts against the scratch ledger
# --------------------------------------------------------------------- #
class TestEngineRuntimeAgreement:
    def test_scratch_ledger_drains_after_run(self):
        """The escape analysis drove every hot-path allocation onto the
        tracked scratch constructors; the runtime must agree.  With the
        scratch ledger installed, a full partition run charges scratch
        bytes, anything escaping into the result stays charged while the
        result is alive, and dropping the result drains the ledger to
        exactly zero -- no leaked charges (static verdict 'local'/'escapes'
        wrong) and no double-frees."""
        import dataclasses
        import gc

        from repro.bench.instances import load_instance
        from repro.core import config as C
        from repro.core.partitioner import partition
        from repro.memory.tracker import MemoryTracker

        graph = load_instance("fem-grid")
        cfg = dataclasses.replace(
            C.terapart(),
            obs=C.ObsConfig(enabled=True, track_scratch=True),
        )
        tracker = MemoryTracker()
        result = partition(graph, 8, cfg, tracker=tracker)
        assert tracker.peak_breakdown.get("scratch", 0) > 0, (
            "the run never charged tracked scratch -- the migration "
            "regressed"
        )
        del result
        gc.collect()
        assert tracker.breakdown().get("scratch", 0) == 0


# --------------------------------------------------------------------- #
# vocabulary drift: KNOWN_PHASES vs the spans real runs emit
# --------------------------------------------------------------------- #
class TestPhaseVocabularyDrift:
    #: KNOWN_PHASES names that belong to the runtime cost model's kernel
    #: phases (runtime.execute / ConflictDetector scopes), not the span
    #: tracer; they never appear as span names.
    RUNTIME_ONLY = frozenset({"fm-pass", "lp-refinement"})

    @pytest.fixture(scope="class")
    def observed_spans(self):
        import dataclasses

        from repro.bench.instances import load_instance
        from repro.core import config as C
        from repro.core.config import DistObsConfig
        from repro.core.partitioner import partition
        from repro.dist.dpartitioner import DistConfig, dpartition
        from repro.obs.regress.attrib import normalize_phase

        graph = load_instance("fem-grid")
        names: set[str] = set()
        # the default two-phase configuration and the classic+FM one
        # together exercise every shared-memory span site
        for cfg in (
            dataclasses.replace(
                C.terapart(), obs=C.ObsConfig(enabled=True)
            ),
            dataclasses.replace(
                C.kaminpar(), obs=C.ObsConfig(enabled=True), use_fm=True
            ),
        ):
            result = partition(graph, 8, cfg)
            names |= {normalize_phase(s.name) for s in result.trace.spans}
        dresult = dpartition(
            graph,
            8,
            2,
            compressed=True,
            config=DistConfig(obs=DistObsConfig(enabled=True)),
        )
        for tracer in dresult.trace.rank_tracers:
            names |= {normalize_phase(s.name) for s in tracer.spans}
        return names

    def test_every_span_is_known(self, observed_spans):
        from repro.obs.regress.attrib import KNOWN_PHASES

        assert observed_spans <= KNOWN_PHASES, (
            f"spans missing from KNOWN_PHASES: "
            f"{sorted(observed_spans - KNOWN_PHASES)}"
        )

    def test_no_dead_vocabulary(self, observed_spans):
        from repro.obs.regress.attrib import KNOWN_PHASES

        unobserved = KNOWN_PHASES - observed_spans
        assert unobserved == self.RUNTIME_ONLY, (
            f"KNOWN_PHASES entries no smoke run emits: "
            f"{sorted(unobserved - self.RUNTIME_ONLY)} "
            f"(runtime-only allowlist: {sorted(self.RUNTIME_ONLY)})"
        )
