"""Tests for Dolan-Moré performance profiles (repro.bench.profiles)."""

import numpy as np
import pytest

from repro.bench.profiles import (
    performance_profile,
    profile_summary,
    render_profile,
)

TAUS = np.array([1.0, 1.05, 1.1, 1.5, 2.0])


class TestPerformanceProfile:
    def test_exact_fractions(self):
        cuts = {
            "a": {"i1": 100.0, "i2": 200.0},
            "b": {"i1": 110.0, "i2": 190.0},
        }
        taus, profiles = performance_profile(cuts, taus=TAUS)
        # best: i1 -> a (100), i2 -> b (190)
        # a: i1 ratio 1.0, i2 ratio 200/190 ~ 1.0526
        assert profiles["a"].tolist() == [0.5, 0.5, 1.0, 1.0, 1.0]
        # b: i1 ratio 1.1, i2 ratio 1.0
        assert profiles["b"].tolist() == [0.5, 0.5, 1.0, 1.0, 1.0]

    def test_dominant_algorithm_is_all_ones(self):
        cuts = {
            "best": {"i1": 10.0, "i2": 10.0},
            "worst": {"i1": 30.0, "i2": 30.0},
        }
        taus, profiles = performance_profile(cuts, taus=TAUS)
        assert profiles["best"].tolist() == [1.0] * len(TAUS)
        assert profiles["worst"].tolist() == [0.0] * len(TAUS)

    def test_missing_instance_never_within_tau(self):
        """Failed runs count against the algorithm (Mt-Metis semantics)."""
        cuts = {"a": {"i1": 10.0, "i2": 12.0}, "b": {"i1": 10.0}}
        taus, profiles = performance_profile(cuts, taus=TAUS)
        assert profiles["b"][-1] == 0.5  # i2 missing: capped at 1/2 forever
        assert profiles["a"][-1] == 1.0

    def test_negative_cut_treated_as_failure(self):
        cuts = {"a": {"i1": 10.0}, "b": {"i1": -1.0}}
        taus, profiles = performance_profile(cuts, taus=TAUS)
        assert profiles["b"].tolist() == [0.0] * len(TAUS)
        assert profiles["a"].tolist() == [1.0] * len(TAUS)

    def test_zero_best_ties(self):
        """cut == 0 on both sides is a tie at tau = 1, not a crash."""
        cuts = {"a": {"i1": 0.0}, "b": {"i1": 0.0}}
        taus, profiles = performance_profile(cuts, taus=TAUS)
        assert profiles["a"][0] == 1.0 and profiles["b"][0] == 1.0

    def test_default_taus(self):
        taus, _ = performance_profile({"a": {"i": 1.0}})
        assert taus[0] == 1.0 and taus[-1] == 2.0 and len(taus) == 101


class TestProfileSummaryRoundTrip:
    def test_summary_resolves_profile_points(self):
        """profile_summary reads back exactly what the profile says."""
        cuts = {
            "a": {"i1": 100.0, "i2": 200.0, "i3": 300.0},
            "b": {"i1": 104.0, "i2": 260.0, "i3": 290.0},
        }
        taus, profiles = performance_profile(cuts)
        summary = profile_summary(taus, profiles)
        for alg in cuts:
            assert summary[alg]["best"] == profiles[alg][0]
            idx = np.searchsorted(taus, 1.05)
            assert summary[alg]["within_1.05"] == profiles[alg][idx]
            assert 0.0 <= summary[alg]["auc"] <= 1.0
        # a is best on i1 (100 vs 104 -> b within 1.05) and i2; b best on i3
        assert summary["a"]["best"] == pytest.approx(2 / 3)
        assert summary["b"]["best"] == pytest.approx(1 / 3)
        assert summary["b"]["within_1.05"] == pytest.approx(2 / 3)

    def test_auc_orders_algorithms(self):
        cuts = {
            "good": {"i1": 10.0, "i2": 10.0},
            "bad": {"i1": 19.0, "i2": 19.0},
        }
        taus, profiles = performance_profile(cuts)
        summary = profile_summary(taus, profiles)
        assert summary["good"]["auc"] > summary["bad"]["auc"]


class TestRenderProfile:
    def test_contains_algorithms_and_taus(self):
        cuts = {"alpha": {"i": 1.0}, "beta": {"i": 2.0}}
        taus, profiles = performance_profile(cuts)
        out = render_profile(taus, profiles)
        assert "alpha" in out and "beta" in out
        assert out.splitlines()[0].startswith("tau:")

    def test_values_render_resolved(self):
        cuts = {"a": {"i1": 1.0, "i2": 1.0}}
        taus, profiles = performance_profile(cuts)
        out = render_profile(taus, profiles)
        assert "1.00" in out  # the always-best algorithm renders 1.00
