"""Golden-schema tests for the Chrome-trace exporter (obs satellite).

The Trace Event Format contract: every event carries the five mandatory
keys ``name/ph/ts/pid/tid``, ``B``/``E`` events nest strictly per tid, the
document round-trips through ``json.loads``, and the span tree of a
deterministic mini-run matches a checked-in golden file (names and nesting
only -- timings and byte counts are machine-dependent).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.core import config as C
from repro.graph import generators as gen
from repro.obs.export import chrome_trace, chrome_trace_events, render_level_summary

GOLDEN = Path(__file__).parent / "data" / "golden_trace_tree.json"

MANDATORY_KEYS = ("name", "ph", "ts", "pid", "tid")


def mini_run():
    """The deterministic mini-run the golden tree is generated from."""
    graph = gen.weblike(400, avg_degree=8, seed=5)
    cfg = C.preset("terapart", seed=3, p=4).with_(obs=C.ObsConfig(enabled=True))
    return repro.partition(graph, 4, cfg)


@pytest.fixture(scope="module")
def traced_result():
    return mini_run()


def test_every_event_has_mandatory_keys(traced_result):
    events = chrome_trace_events(traced_result.trace)
    assert events, "trace must not be empty"
    for ev in events:
        for key in MANDATORY_KEYS:
            assert key in ev, f"event {ev} missing {key!r}"
        assert ev["ph"] in ("B", "E", "C", "M")
        assert ev["ts"] >= 0


def test_duration_events_strictly_nest_per_tid(traced_result):
    events = chrome_trace_events(traced_result.trace)
    stacks: dict[int, list[str]] = {}
    ts_last: dict[int, float] = {}
    for ev in events:
        if ev["ph"] not in ("B", "E"):
            continue
        tid = ev["tid"]
        stack = stacks.setdefault(tid, [])
        # timestamps never go backwards within a tid's lane
        assert ev["ts"] >= ts_last.get(tid, 0.0)
        ts_last[tid] = ev["ts"]
        if ev["ph"] == "B":
            stack.append(ev["name"])
        else:
            assert stack, f"E event {ev['name']!r} with empty stack"
            assert stack.pop() == ev["name"], "E does not match innermost B"
    for tid, stack in stacks.items():
        assert stack == [], f"unclosed spans on tid {tid}: {stack}"


def test_trace_round_trips_through_json(traced_result):
    doc = chrome_trace(traced_result.trace)
    text = json.dumps(doc)
    back = json.loads(text)
    assert back == doc
    assert back["displayTimeUnit"] == "ms"
    assert isinstance(back["traceEvents"], list)


def test_span_tree_matches_golden(traced_result):
    tree = traced_result.trace.span_tree()
    golden = json.loads(GOLDEN.read_text())
    assert tree == golden, (
        "span tree of the mini-run diverged from the golden file; if the "
        "pipeline structure changed intentionally, regenerate with: "
        "PYTHONPATH=src python tests/data/regen_golden_trace.py"
    )


def test_waterfall_agrees_with_memory_report(traced_result):
    """The acceptance criterion: per-phase peak-memory entries in the
    metrics JSON equal ``MemoryReport.phase_peaks`` byte-for-byte, and each
    breakdown sums exactly to its peak."""
    obs = traced_result.obs
    phase_peaks = traced_result.memory.phase_peaks
    assert obs["waterfall"], "waterfall must not be empty"
    for entry in obs["waterfall"]:
        assert entry["phase"] in phase_peaks
        assert entry["peak_bytes"] == phase_peaks[entry["phase"]]
        assert sum(entry["breakdown"].values()) == entry["peak_bytes"]
    # the global peak and its breakdown agree with the report as well
    assert obs["peak_bytes"] == traced_result.peak_bytes
    assert sum(obs["peak_breakdown"].values()) == obs["peak_bytes"]


def test_metrics_json_is_serializable(traced_result, tmp_path):
    out = tmp_path / "metrics.json"
    out.write_text(json.dumps(traced_result.obs))
    back = json.loads(out.read_text())
    assert back["schema"] == 1
    assert back["counters"] == traced_result.obs["counters"]


def test_level_summary_renders(traced_result):
    text = render_level_summary(traced_result.trace)
    lines = text.splitlines()
    assert lines[0].split()[:2] == ["level", "wall"]
    assert len(lines) >= 3  # header + rule + at least one level row
