"""Edge-case and property tests for the bulk numpy kernels.

Each kernel in :mod:`repro.core.kernels` (plus the bulk varint encoder
and the bulk graph compressor it enables) is checked against the scalar
reference it replaces, with emphasis on the cases the issue calls out:
empty chunks, isolated vertices, single-cluster graphs, max-degree
vertices whose neighborhoods cross chunk boundaries, and integer-width
overflow guards.
"""

import numpy as np
import pytest

import repro
from repro.core.config import preset
from repro.core.initial.fm2way import _gains_scalar, cut2way_scalar
from repro.core.kernels import (
    aggregate_coarse_edges,
    batch_hash_insert,
    bulk_size_constrained_commit,
    entry_width_bits_bulk,
    gather_cluster_members,
    segment_best_last,
    two_way_cut,
    two_way_gains,
)
from repro.core.partition import PartitionedGraph
from repro.core.refinement.gain_table import (
    SparseGainTable,
    entry_width_bits,
    make_gain_table,
)
from repro.graph import generators as gen
from repro.graph.builder import from_edges
from repro.graph.compressed import compress_graph
from repro.graph.varint import (
    encode_signed_varint,
    encode_stream,
    encode_stream_bulk,
    varint_len,
    varint_lengths,
    zigzag_encode,
)


def make_pgraph(graph, k, seed=0):
    rng = np.random.default_rng(seed)
    part = rng.integers(0, k, size=graph.n).astype(np.int32)
    return PartitionedGraph(graph, k, part)


# --------------------------------------------------------------------- #
# segment_best_last
# --------------------------------------------------------------------- #
def brute_best(owner, rank, tiebreak=None):
    """Reference: per owner, maximize (rank, tiebreak, position)."""
    out = []
    for o in np.unique(owner):
        idx = np.flatnonzero(owner == o).tolist()
        out.append(
            max(
                idx,
                key=lambda i: (
                    int(rank[i]),
                    int(tiebreak[i]) if tiebreak is not None else 0,
                    i,
                ),
            )
        )
    return np.array(out, dtype=np.int64)


class TestSegmentBestLast:
    def test_empty(self):
        assert len(segment_best_last(np.empty(0, np.int64), np.empty(0))) == 0

    def test_single_segment_tie_keeps_latest(self):
        owner = np.zeros(5, dtype=np.int64)
        rank = np.array([3, 7, 7, 2, 7])
        assert segment_best_last(owner, rank).tolist() == [4]

    def test_tiebreak_beats_position(self):
        owner = np.zeros(3, dtype=np.int64)
        rank = np.array([5, 5, 5])
        tb = np.array([1, 9, 0])
        assert segment_best_last(owner, rank, tiebreak=tb).tolist() == [1]

    @pytest.mark.parametrize("with_tb", [False, True])
    def test_random_vs_bruteforce(self, with_tb):
        for seed in range(30):
            rng = np.random.default_rng(seed)
            m = int(rng.integers(1, 60))
            owner = np.sort(rng.integers(0, 8, size=m))
            rank = rng.integers(-5, 5, size=m)
            tb = rng.integers(-3, 3, size=m) if with_tb else None
            got = segment_best_last(owner, rank, tiebreak=tb)
            assert np.array_equal(got, brute_best(owner, rank, tb)), seed

    def test_unsorted_owner_rejected(self):
        with pytest.raises(AssertionError):
            segment_best_last(np.array([5, 0]), np.array([1, 2]))


# --------------------------------------------------------------------- #
# bulk_size_constrained_commit
# --------------------------------------------------------------------- #
def scalar_commit(targets, prevs, weights, capacities, limits):
    per_bucket = isinstance(limits, np.ndarray)
    acc = np.ones(len(targets), dtype=bool)
    for i in range(len(targets)):
        t, w = int(targets[i]), int(weights[i])
        lim = int(limits[t]) if per_bucket else limits
        if capacities[t] + w > lim:
            acc[i] = False
            continue
        capacities[int(prevs[i])] -= w
        capacities[t] += w
    return acc


class TestBulkCommit:
    def test_empty(self):
        caps = np.array([3, 4], dtype=np.int64)
        e = np.empty(0, dtype=np.int64)
        acc = bulk_size_constrained_commit(e, e, e, caps, 10)
        assert len(acc) == 0 and caps.tolist() == [3, 4]

    def test_oversubscribed_bucket_replays_in_order(self):
        # bucket 0 can take exactly one more unit: only the first candidate
        # lands, exactly like the sequential scan
        targets = np.array([0, 0, 0], dtype=np.int64)
        prevs = np.array([1, 1, 1], dtype=np.int64)
        weights = np.array([1, 1, 1], dtype=np.int64)
        caps = np.array([9, 3], dtype=np.int64)
        acc = bulk_size_constrained_commit(targets, prevs, weights, caps, 10)
        assert acc.tolist() == [True, False, False]
        assert caps.tolist() == [10, 2]

    @pytest.mark.parametrize("per_bucket", [False, True])
    def test_random_vs_scalar(self, per_bucket):
        for seed in range(40):
            rng = np.random.default_rng(seed)
            nb = int(rng.integers(2, 10))
            m = int(rng.integers(0, 40))
            # movers unique: each vertex moves at most once per commit
            targets = rng.integers(0, nb, size=m)
            prevs = rng.integers(0, nb, size=m)
            weights = rng.integers(1, 6, size=m)
            caps = rng.integers(0, 20, size=nb)
            if per_bucket:
                limits = rng.integers(5, 30, size=nb)
            else:
                limits = int(rng.integers(5, 30))
            caps_a, caps_b = caps.copy(), caps.copy()
            got = bulk_size_constrained_commit(
                targets, prevs, weights, caps_a, limits
            )
            want = scalar_commit(targets, prevs, weights, caps_b, limits)
            assert np.array_equal(got, want), seed
            assert np.array_equal(caps_a, caps_b), seed


# --------------------------------------------------------------------- #
# contraction kernels
# --------------------------------------------------------------------- #
class TestContractionKernels:
    def test_gather_empty_chunk(self):
        e = np.empty(0, dtype=np.int64)
        members, owner = gather_cluster_members(e, e, e, e)
        assert len(members) == 0 and len(owner) == 0

    def test_gather_flattens_member_lists(self):
        # member_order grouped by cluster: cluster A = {4, 2}, B = {7}
        member_order = np.array([4, 2, 7], dtype=np.int64)
        starts = np.array([0, 2], dtype=np.int64)
        ends = np.array([2, 3], dtype=np.int64)
        members, owner = gather_cluster_members(
            member_order, starts, ends, np.array([1, 0], dtype=np.int64)
        )
        assert members.tolist() == [7, 4, 2]
        assert owner.tolist() == [0, 1, 1]

    def test_aggregate_empty_chunk(self):
        e = np.empty(0, dtype=np.int64)
        po, pc, pw, off = aggregate_coarse_edges(e, e, e, e, 10, 3)
        assert len(po) == 0 and off.tolist() == [0, 0, 0]

    def test_aggregate_single_cluster_drops_everything(self):
        # every neighbor resolves to the owner's own leader -> no coarse edges
        owner = np.zeros(4, dtype=np.int64)
        targets = np.full(4, 5, dtype=np.int64)
        weights = np.ones(4, dtype=np.int64)
        leaders = np.array([5], dtype=np.int64)
        po, pc, pw, off = aggregate_coarse_edges(
            owner, targets, weights, leaders, 6, 1
        )
        assert len(po) == 0 and off.tolist() == [0]

    def test_aggregate_merges_parallel_edges(self):
        owner = np.array([0, 0, 0, 1], dtype=np.int64)
        targets = np.array([3, 3, 2, 2], dtype=np.int64)
        weights = np.array([1, 4, 2, 7], dtype=np.int64)
        leaders = np.array([2, 3], dtype=np.int64)
        po, pc, pw, off = aggregate_coarse_edges(
            owner, targets, weights, leaders, 4, 2
        )
        # owner 0 keeps 3 (5 merged) and drops own leader 2's... no: owner 0's
        # leader is 2, so the (0 -> 2) edge drops; owner 1's leader is 3.
        assert po.tolist() == [0, 1]
        assert pc.tolist() == [3, 2]
        assert pw.tolist() == [5, 7]
        assert off.tolist() == [0, 1]


# --------------------------------------------------------------------- #
# two-way FM kernels
# --------------------------------------------------------------------- #
class TestTwoWayKernels:
    @pytest.fixture(scope="class")
    def graph(self):
        return gen.weblike(200, avg_degree=6, seed=3)

    def test_gains_and_cut_match_scalar_csr(self, graph):
        rng = np.random.default_rng(0)
        part = rng.integers(0, 2, size=graph.n).astype(np.int32)
        assert np.array_equal(two_way_gains(graph, part), _gains_scalar(graph, part))
        assert two_way_cut(graph, part) == cut2way_scalar(graph, part)

    def test_gains_and_cut_match_scalar_compressed(self, graph):
        cg = compress_graph(graph)
        rng = np.random.default_rng(1)
        part = rng.integers(0, 2, size=graph.n).astype(np.int32)
        assert np.array_equal(two_way_gains(cg, part), _gains_scalar(graph, part))
        assert two_way_cut(cg, part) == cut2way_scalar(graph, part)

    def test_isolated_vertices_gain_zero(self):
        g = from_edges(5, np.array([[0, 1]]))  # vertices 2..4 isolated
        part = np.array([0, 1, 0, 1, 0], dtype=np.int32)
        gains = two_way_gains(g, part)
        assert gains.tolist() == [1, 1, 0, 0, 0]
        assert two_way_cut(g, part) == 1

    def test_edgeless_graph(self):
        g = from_edges(3, np.empty((0, 2), dtype=np.int64))
        part = np.zeros(3, dtype=np.int32)
        assert two_way_gains(g, part).tolist() == [0, 0, 0]
        assert two_way_cut(g, part) == 0


# --------------------------------------------------------------------- #
# gain-table kernels
# --------------------------------------------------------------------- #
class TestGainTableKernels:
    @pytest.fixture(scope="class")
    def pg(self):
        return make_pgraph(gen.weblike(250, avg_degree=7, seed=5), 6)

    def test_entry_width_bulk_matches_scalar(self):
        vals = np.array([0, 1, 255, 256, 65535, 65536, 2**32 - 1, 2**32, 2**40])
        got = entry_width_bits_bulk(vals)
        want = [entry_width_bits(int(v)) for v in vals]
        assert got.tolist() == want

    def test_sparse_build_bit_identical(self, pg):
        bulk = SparseGainTable(pg, bulk=True)
        ref = SparseGainTable(pg, bulk=False)
        assert np.array_equal(bulk._keys, ref._keys)
        assert np.array_equal(bulk._vals, ref._vals)
        assert np.array_equal(bulk._offsets, ref._offsets)

    @pytest.mark.parametrize("kind", ["none", "full", "sparse"])
    def test_gains_many_matches_per_vertex(self, pg, kind):
        table = make_gain_table(kind, pg)
        us = np.arange(0, pg.graph.n, 3, dtype=np.int64)
        o, b, g = table.gains_many(us)
        for i, u in enumerate(us.tolist()):
            sel = o == i
            blocks, gains = table.gains(int(u))
            assert np.array_equal(b[sel], blocks), (kind, u)
            assert np.array_equal(g[sel], gains), (kind, u)

    def test_sparse_affinities_matches_affinity(self, pg):
        table = SparseGainTable(pg)
        rng = np.random.default_rng(2)
        us = rng.integers(0, pg.graph.n, size=200)
        blocks = rng.integers(0, pg.k, size=200)
        got = table.affinities(us, blocks)
        want = [table.affinity(int(u), int(b)) for u, b in zip(us, blocks)]
        assert got.tolist() == want

    def test_gains_many_empty_chunk(self, pg):
        table = SparseGainTable(pg)
        o, b, g = table.gains_many(np.empty(0, dtype=np.int64))
        assert len(o) == 0 and len(b) == 0 and len(g) == 0

    def test_hash_insert_block_overflow_guard(self):
        # block IDs are stored int32; wider IDs must trip the guard
        keys = np.full(8, -1, dtype=np.int32)
        vals = np.zeros(8, dtype=np.int64)
        with pytest.raises(AssertionError):
            batch_hash_insert(
                keys,
                vals,
                np.array([0], dtype=np.int64),
                np.array([8], dtype=np.int64),
                np.array([2**40], dtype=np.int64),
                np.array([1], dtype=np.int64),
            )


# --------------------------------------------------------------------- #
# bulk varint encoding
# --------------------------------------------------------------------- #
class TestVarintBulk:
    def test_lengths_match_scalar_at_boundaries(self):
        vals = []
        for k in range(1, 9):
            vals += [(1 << (7 * k)) - 1, 1 << (7 * k)]
        vals.append(2**63 - 1)
        arr = np.array(vals, dtype=np.int64)
        assert varint_lengths(arr).tolist() == [varint_len(int(v)) for v in vals]

    def test_lengths_reject_negative(self):
        with pytest.raises(ValueError):
            varint_lengths(np.array([3, -1]))

    def test_zigzag_matches_signed_encoder(self):
        vals = np.array([0, 1, -1, 63, -64, 2**40, -(2**40)])
        for v, zz in zip(vals.tolist(), zigzag_encode(vals).tolist()):
            ref = bytearray()
            encode_signed_varint(int(v), ref)
            out = bytearray()
            out_len = encode_stream(np.array([zz]), out)
            assert bytes(out) == bytes(ref), v
            assert out_len == len(ref)

    def test_stream_bulk_matches_scalar(self):
        for seed in range(10):
            rng = np.random.default_rng(seed)
            vals = rng.integers(0, 2**60, size=int(rng.integers(0, 50)))
            ref = bytearray()
            encode_stream(vals, ref)
            assert encode_stream_bulk(vals).tobytes() == bytes(ref), seed

    def test_stream_bulk_empty(self):
        assert encode_stream_bulk(np.empty(0, dtype=np.int64)).tobytes() == b""


# --------------------------------------------------------------------- #
# bulk graph compression
# --------------------------------------------------------------------- #
def _graph_cases():
    rng = np.random.default_rng(9)
    e = 400
    edges = rng.integers(0, 120, size=(e, 2))
    weighted = from_edges(120, edges, rng.integers(1, 1000, size=e))
    return [
        ("grid", gen.grid2d(15, 15), {}),
        ("web", gen.weblike(300, avg_degree=8, seed=1), {}),
        ("weighted", weighted, {}),
        ("no-intervals", gen.grid2d(12, 12), {"enable_intervals": False}),
        (
            "star-chunked",
            gen.star(500),
            {"high_degree_threshold": 100, "chunk_length": 64},
        ),
        ("edgeless", from_edges(6, np.empty((0, 2), dtype=np.int64)), {}),
        ("isolated", from_edges(8, np.array([[0, 1], [1, 2]])), {}),
    ]


class TestBulkCompression:
    @pytest.mark.parametrize(
        "name,graph,kw", _graph_cases(), ids=[c[0] for c in _graph_cases()]
    )
    def test_byte_identical_to_scalar(self, name, graph, kw):
        a = compress_graph(graph, bulk=True, **kw)
        b = compress_graph(graph, bulk=False, **kw)
        assert bytes(a.data) == bytes(b.data), name
        assert np.array_equal(a.offsets, b.offsets), name
        assert a.stats == b.stats, name


# --------------------------------------------------------------------- #
# chunked metric fallbacks + pipeline edge graphs
# --------------------------------------------------------------------- #
class TestMetricFallbacks:
    def test_compressed_metrics_match_csr(self):
        # star forces the chunked high-degree representation, so the
        # max-degree neighborhood spans many decode chunks
        for graph in (gen.star(5000), gen.weblike(300, avg_degree=8, seed=2)):
            cg = compress_graph(
                graph, high_degree_threshold=100, chunk_length=64
            )
            rng = np.random.default_rng(4)
            part = rng.integers(0, 3, size=graph.n).astype(np.int32)
            a = PartitionedGraph(graph, 3, part.copy())
            b = PartitionedGraph(cg, 3, part.copy())
            assert a.cut_weight() == b.cut_weight()
            assert np.array_equal(
                np.sort(a.boundary_vertices()), np.sort(b.boundary_vertices())
            )


class TestPipelineEdgeGraphs:
    @pytest.mark.parametrize(
        "graph",
        [
            gen.complete(24),  # LP collapses toward a single cluster
            from_edges(40, np.array([[0, 1], [1, 2], [2, 3]])),  # mostly isolated
            gen.star(120),  # one max-degree hub
        ],
        ids=["complete", "isolated", "star"],
    )
    def test_bulk_matches_scalar_end_to_end(self, graph):
        for seed in range(2):
            runs = []
            for bulk in (True, False):
                cfg = preset(
                    "terapart", seed=seed, p=4, use_bulk_kernels=bulk
                )
                runs.append(repro.partition(graph, 2, cfg))
            a, b = runs
            assert np.array_equal(a.partition, b.partition)
            assert a.cut == b.cut
            a.pgraph.validate()
