"""Disabled-tracing overhead guard (obs satellite; also asserted in CI).

When ``config.obs.enabled`` is False the partitioner must not install any
hooks: no tracer on the runtime, no decode-counter hook in
``graph.access``, no trace artifacts on the result -- and the per-call cost
of the ``NullTracer`` fast path must stay within an order of magnitude of
a plain no-op function call (generous bound; this guards against someone
accidentally adding allocation or string formatting to the disabled path).
"""

from __future__ import annotations

import time

import repro
from repro.core import config as C
from repro.graph import access as graph_access
from repro.graph import generators as gen
from repro.memory.tracker import MemoryTracker
from repro.obs.tracer import NULL_TRACER


def test_disabled_run_installs_no_hooks_and_attaches_no_artifacts():
    graph = gen.weblike(300, avg_degree=8, seed=21)
    result = repro.partition(graph, 4, C.preset("terapart", seed=0, p=4))
    assert result.trace is None
    assert result.obs is None
    # module-level decode hook must be left uninstalled
    assert graph_access._tracer is None


def test_traced_run_uninstalls_hooks_afterwards():
    graph = gen.weblike(300, avg_degree=8, seed=21)
    cfg = C.preset("terapart", seed=0, p=4).with_(obs=C.ObsConfig(enabled=True))
    repro.partition(graph, 4, cfg)
    assert graph_access._tracer is None


def test_null_tracer_calls_are_cheap():
    """Microbenchmark with a very generous bound: the disabled fast path
    must cost no more than 10x a trivial no-op call (it is a `pass` body;
    anything slower means work crept into the disabled path)."""

    def noop(name, value=1):
        pass

    n = 50_000

    def best_of(fn, reps=5):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            for _i in range(n):
                fn("counter", 1)
            best = min(best, time.perf_counter() - t0)
        return best

    t_noop = best_of(noop)
    t_null = best_of(NULL_TRACER.add)
    assert t_null < 10 * t_noop + 1e-3, (t_null, t_noop)


def test_null_phase_is_plain_tracker_phase():
    """`ctx.phase` with the NullTracer must enter the very same phase paths
    a tracker-only driver would -- no extra phases, no renames."""
    tracker = MemoryTracker()
    with NULL_TRACER.phase("a", tracker):
        with NULL_TRACER.phase("b", tracker):
            tracker.alloc("x", 64, "scratch")
    assert set(tracker.phases().keys()) == {"a", "a/b"}
