"""Failure-injection tests: corrupt inputs must fail loudly, not quietly.

A partitioner that silently decodes garbage produces silently-wrong
science; these tests corrupt each on-disk/in-memory format and assert the
failure is an exception (never a wrong-but-plausible graph).
"""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.compressed import CompressedGraph, compress_graph, decompress_graph
from repro.graph.io import read_binary, read_metis, write_binary
from repro.graph.varint import decode_varint

from conftest import graphs_equal


@pytest.fixture
def web_cg(web_graph):
    return compress_graph(web_graph)


class TestCorruptVarint:
    def test_endless_continuation_detected(self):
        with pytest.raises(ValueError, match="too long"):
            decode_varint(bytes([0x80] * 20), 0)

    def test_truncated_buffer_raises(self):
        buf = bytearray()
        from repro.graph.varint import encode_varint

        encode_varint(2**40, buf)
        with pytest.raises(IndexError):
            decode_varint(bytes(buf[:-1]), 0)


class TestCorruptCompressedGraph:
    def _clone_with_data(self, cg: CompressedGraph, data: bytes) -> CompressedGraph:
        return CompressedGraph(
            cg.n,
            cg.num_directed_edges,
            cg.offsets.copy(),
            data,
            None,
            has_edge_weights=cg.has_edge_weights,
            config=cg.config,
            stats=cg.stats,
        )

    def test_truncated_data_fails(self, web_cg):
        bad = self._clone_with_data(web_cg, web_cg.data[: len(web_cg.data) // 2])
        with pytest.raises((IndexError, ValueError)):
            decompress_graph(bad)

    def test_chunk_length_mismatch_detected(self):
        g = gen.star(3000)
        cg = compress_graph(g, high_degree_threshold=1000, chunk_length=100)
        # flip a byte inside the hub's first chunk-length prefix
        data = bytearray(cg.data)
        hub_off = int(cg.offsets[0])
        # skip the first-edge-id header, then clobber the length prefix
        _, pos = decode_varint(data, hub_off)
        data[pos] = (data[pos] ^ 0x3F) | 0x01
        bad = CompressedGraph(
            cg.n,
            cg.num_directed_edges,
            cg.offsets.copy(),
            bytes(data),
            None,
            has_edge_weights=False,
            config=cg.config,
            stats=cg.stats,
        )
        with pytest.raises((ValueError, IndexError)):
            bad.neighbors(0)

    def test_header_tamper_changes_degrees_consistently(self, web_graph):
        """Headers are load-bearing: degree comes from consecutive headers,
        so a consistent graph after tampering is impossible to miss."""
        cg = compress_graph(web_graph)
        assert np.array_equal(cg.degrees, web_graph.degrees)


class TestCorruptBinaryFiles:
    def test_wrong_magic(self, tmp_path, grid_graph):
        p = tmp_path / "g.bin"
        write_binary(grid_graph, p)
        data = bytearray(p.read_bytes())
        data[:4] = b"EVIL"
        p.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="magic"):
            read_binary(p)

    def test_wrong_version(self, tmp_path, grid_graph):
        p = tmp_path / "g.bin"
        write_binary(grid_graph, p)
        data = bytearray(p.read_bytes())
        data[4] = 99
        p.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="version"):
            read_binary(p)

    def test_out_of_range_neighbor_rejected(self, tmp_path, grid_graph):
        p = tmp_path / "g.bin"
        write_binary(grid_graph, p)
        data = bytearray(p.read_bytes())
        # clobber the first adjacency entry with a huge vertex id
        header = 32
        indptr_bytes = 8 * (grid_graph.n + 1)
        data[header + indptr_bytes : header + indptr_bytes + 8] = (
            10**12
        ).to_bytes(8, "little")
        p.write_bytes(bytes(data))
        with pytest.raises(ValueError):
            read_binary(p)


class TestCorruptMetis:
    def test_vertex_index_out_of_range(self, tmp_path):
        p = tmp_path / "g.metis"
        p.write_text("2 1\n9\n1\n")
        with pytest.raises((ValueError, IndexError)):
            read_metis(p)

    def test_garbage_tokens(self, tmp_path):
        p = tmp_path / "g.metis"
        p.write_text("2 1\nabc\n1\n")
        with pytest.raises(ValueError):
            read_metis(p)


class TestServiceFailureInjection:
    """A partitioner raising mid-request must surface as a structured
    error — without poisoning the request queue or leaking cache bytes."""

    class _Flaky:
        """partition_fn that raises for the first ``fail`` calls."""

        def __init__(self, fail: int = 1):
            self.calls = 0
            self.fail = fail

        def __call__(self, graph, k, config, tracker=None):
            from types import SimpleNamespace

            self.calls += 1
            if self.calls <= self.fail:
                raise RuntimeError("injected partitioner crash")
            part = np.zeros(graph.n, dtype=np.int32)
            part[graph.n // 2 :] = k - 1
            return SimpleNamespace(
                partition=part,
                cut=7,
                imbalance=0.0,
                balanced=True,
                wall_seconds=0.0,
                num_levels=1,
            )

    @staticmethod
    def _handle(flaky):
        from repro.core import config as C
        from repro.core.config import ServeConfig
        from repro.serve import ServiceHandle

        return ServiceHandle(
            C.terapart().with_(compress_input=False),
            ServeConfig(cache_budget_bytes=1 << 20),
            partition_fn=flaky,
        )

    def test_structured_error_then_queue_survives(self, grid_graph):
        from repro.serve import ServiceError

        flaky = self._Flaky(fail=1)
        with self._handle(flaky) as h:
            h.register_graph("g", grid_graph)
            with pytest.raises(ServiceError) as ei:
                h.partition("g", 4)
            err = ei.value.to_dict()
            # structured: machine-readable code + request context
            assert err["code"] == "partitioner-error"
            assert "injected partitioner crash" in err["error"]
            assert err["detail"]["graph"] == "g" and err["detail"]["k"] == 4
            # the queue is not poisoned: the next request runs and succeeds
            r = h.partition("g", 4)
            snap = h.metrics_snapshot()
        assert flaky.calls == 2
        assert r.mode == "full" and r.cut == 7
        assert snap["serve.run_errors"] == 1

    def test_failed_run_leaks_no_cache_bytes(self, grid_graph):
        from repro.serve import ServiceError

        flaky = self._Flaky(fail=1)
        with self._handle(flaky) as h:
            h.register_graph("g", grid_graph)
            with pytest.raises(ServiceError):
                h.partition("g", 4)
            cache = h.service.cache
            tracker = h.service.tracker
            # nothing was cached for the failed key, no in-flight leftovers
            assert len(cache) == 0
            assert cache.stats.resident_bytes == 0
            assert not h.service._inflight
            assert tracker.breakdown().get("serve-cache", 0) == 0

    def test_failure_propagates_to_all_batched_clients(self, grid_graph):
        from repro.serve import ServiceError

        class _SlowFlaky(self._Flaky):
            def __call__(self, graph, k, config, tracker=None):
                import time

                time.sleep(0.05)  # hold the window so clients batch up
                return super().__call__(graph, k, config, tracker=tracker)

        flaky = _SlowFlaky(fail=1)
        with self._handle(flaky) as h:
            h.register_graph("g", grid_graph)
            import asyncio

            async def _gather():
                return await asyncio.gather(
                    *(h.service.partition("g", 4) for _ in range(4)),
                    return_exceptions=True,
                )

            results = h._call(_gather())
            snap = h.metrics_snapshot()
        # one run, one failure, four structured errors — never a hang
        assert flaky.calls == 1
        assert len(results) == 4
        assert all(isinstance(r, ServiceError) for r in results)
        assert snap["serve.run_errors"] == 1
        assert snap["serve.errors"] == 4

    def test_bad_delta_rejected_without_state_change(self, grid_graph):
        from repro.serve import GraphDelta, ServiceError

        flaky = self._Flaky(fail=0)
        with self._handle(flaky) as h:
            fp0 = h.register_graph("g", grid_graph)
            with pytest.raises(ServiceError) as ei:
                h.apply_delta(
                    "g", GraphDelta(add_edges=[[0, 10**9]])
                )
            entry = h.service._entries["g"]
            assert ei.value.code == "bad-request"
            # the graph, its fingerprint, and drift are untouched
            assert entry.fingerprint == fp0
            assert entry.total_changed == 0 and entry.deltas_applied == 0


class TestRoundTripUnderStress:
    def test_many_empty_neighborhoods(self):
        g = gen.star(50)  # 49 degree-1 vertices + hub, then add isolates
        from repro.graph.builder import from_edges

        edges = np.stack(
            [np.zeros(20, dtype=np.int64), np.arange(1, 21, dtype=np.int64)],
            axis=1,
        )
        g = from_edges(1000, edges)  # 979 isolated vertices
        cg = compress_graph(g)
        assert graphs_equal(decompress_graph(cg), g)

    def test_maximal_ids(self):
        from repro.graph.builder import from_edges

        n = 2**20
        edges = np.array([[0, n - 1], [n - 2, n - 1]], dtype=np.int64)
        g = from_edges(n, edges)
        cg = compress_graph(g)
        assert graphs_equal(decompress_graph(cg), g)

    def test_huge_weights(self):
        from repro.graph.builder import from_edges

        g = from_edges(
            3,
            np.array([[0, 1], [1, 2]]),
            np.array([2**55, 2**50], dtype=np.int64),
        )
        cg = compress_graph(g)
        assert graphs_equal(decompress_graph(cg), g)
