"""Failure-injection tests: corrupt inputs must fail loudly, not quietly.

A partitioner that silently decodes garbage produces silently-wrong
science; these tests corrupt each on-disk/in-memory format and assert the
failure is an exception (never a wrong-but-plausible graph).
"""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.compressed import CompressedGraph, compress_graph, decompress_graph
from repro.graph.io import read_binary, read_metis, write_binary
from repro.graph.varint import decode_varint

from conftest import graphs_equal


@pytest.fixture
def web_cg(web_graph):
    return compress_graph(web_graph)


class TestCorruptVarint:
    def test_endless_continuation_detected(self):
        with pytest.raises(ValueError, match="too long"):
            decode_varint(bytes([0x80] * 20), 0)

    def test_truncated_buffer_raises(self):
        buf = bytearray()
        from repro.graph.varint import encode_varint

        encode_varint(2**40, buf)
        with pytest.raises(IndexError):
            decode_varint(bytes(buf[:-1]), 0)


class TestCorruptCompressedGraph:
    def _clone_with_data(self, cg: CompressedGraph, data: bytes) -> CompressedGraph:
        return CompressedGraph(
            cg.n,
            cg.num_directed_edges,
            cg.offsets.copy(),
            data,
            None,
            has_edge_weights=cg.has_edge_weights,
            config=cg.config,
            stats=cg.stats,
        )

    def test_truncated_data_fails(self, web_cg):
        bad = self._clone_with_data(web_cg, web_cg.data[: len(web_cg.data) // 2])
        with pytest.raises((IndexError, ValueError)):
            decompress_graph(bad)

    def test_chunk_length_mismatch_detected(self):
        g = gen.star(3000)
        cg = compress_graph(g, high_degree_threshold=1000, chunk_length=100)
        # flip a byte inside the hub's first chunk-length prefix
        data = bytearray(cg.data)
        hub_off = int(cg.offsets[0])
        # skip the first-edge-id header, then clobber the length prefix
        _, pos = decode_varint(data, hub_off)
        data[pos] = (data[pos] ^ 0x3F) | 0x01
        bad = CompressedGraph(
            cg.n,
            cg.num_directed_edges,
            cg.offsets.copy(),
            bytes(data),
            None,
            has_edge_weights=False,
            config=cg.config,
            stats=cg.stats,
        )
        with pytest.raises((ValueError, IndexError)):
            bad.neighbors(0)

    def test_header_tamper_changes_degrees_consistently(self, web_graph):
        """Headers are load-bearing: degree comes from consecutive headers,
        so a consistent graph after tampering is impossible to miss."""
        cg = compress_graph(web_graph)
        assert np.array_equal(cg.degrees, web_graph.degrees)


class TestCorruptBinaryFiles:
    def test_wrong_magic(self, tmp_path, grid_graph):
        p = tmp_path / "g.bin"
        write_binary(grid_graph, p)
        data = bytearray(p.read_bytes())
        data[:4] = b"EVIL"
        p.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="magic"):
            read_binary(p)

    def test_wrong_version(self, tmp_path, grid_graph):
        p = tmp_path / "g.bin"
        write_binary(grid_graph, p)
        data = bytearray(p.read_bytes())
        data[4] = 99
        p.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="version"):
            read_binary(p)

    def test_out_of_range_neighbor_rejected(self, tmp_path, grid_graph):
        p = tmp_path / "g.bin"
        write_binary(grid_graph, p)
        data = bytearray(p.read_bytes())
        # clobber the first adjacency entry with a huge vertex id
        header = 32
        indptr_bytes = 8 * (grid_graph.n + 1)
        data[header + indptr_bytes : header + indptr_bytes + 8] = (
            10**12
        ).to_bytes(8, "little")
        p.write_bytes(bytes(data))
        with pytest.raises(ValueError):
            read_binary(p)


class TestCorruptMetis:
    def test_vertex_index_out_of_range(self, tmp_path):
        p = tmp_path / "g.metis"
        p.write_text("2 1\n9\n1\n")
        with pytest.raises((ValueError, IndexError)):
            read_metis(p)

    def test_garbage_tokens(self, tmp_path):
        p = tmp_path / "g.metis"
        p.write_text("2 1\nabc\n1\n")
        with pytest.raises(ValueError):
            read_metis(p)


class TestRoundTripUnderStress:
    def test_many_empty_neighborhoods(self):
        g = gen.star(50)  # 49 degree-1 vertices + hub, then add isolates
        from repro.graph.builder import from_edges

        edges = np.stack(
            [np.zeros(20, dtype=np.int64), np.arange(1, 21, dtype=np.int64)],
            axis=1,
        )
        g = from_edges(1000, edges)  # 979 isolated vertices
        cg = compress_graph(g)
        assert graphs_equal(decompress_graph(cg), g)

    def test_maximal_ids(self):
        from repro.graph.builder import from_edges

        n = 2**20
        edges = np.array([[0, n - 1], [n - 2, n - 1]], dtype=np.int64)
        g = from_edges(n, edges)
        cg = compress_graph(g)
        assert graphs_equal(decompress_graph(cg), g)

    def test_huge_weights(self):
        from repro.graph.builder import from_edges

        g = from_edges(
            3,
            np.array([[0, 1], [1, 2]]),
            np.array([2**55, 2**50], dtype=np.int64),
        )
        cg = compress_graph(g)
        assert graphs_equal(decompress_graph(cg), g)
