"""Tests for memory-budget enforcement (machine-size OOM modelling)."""

import numpy as np
import pytest

import repro
from repro.core import config as C
from repro.graph import generators as gen
from repro.memory import MemoryBudgetExceeded, MemoryTracker


class TestBudgetedTracker:
    def test_alloc_within_budget(self):
        t = MemoryTracker(budget=1000)
        t.alloc("x", 900)
        assert t.current_bytes == 900

    def test_alloc_beyond_budget_raises(self):
        t = MemoryTracker(budget=1000)
        t.alloc("x", 900)
        with pytest.raises(MemoryBudgetExceeded, match="y"):
            t.alloc("y", 200)
        # the failed allocation left no trace
        assert t.current_bytes == 900

    def test_free_restores_headroom(self):
        t = MemoryTracker(budget=1000)
        aid = t.alloc("x", 900)
        t.free(aid)
        t.alloc("y", 900)

    def test_touch_respects_budget(self):
        t = MemoryTracker(budget=10_000)
        aid = t.alloc("oc", 10**6, overcommit=True)
        t.touch(aid, 4000)
        with pytest.raises(MemoryBudgetExceeded):
            t.touch(aid, 50_000)
        # rollback: touched bytes unchanged after the failure
        assert t.current_bytes <= 10_000

    def test_resize_respects_budget(self):
        t = MemoryTracker(budget=1000)
        aid = t.alloc("x", 500)
        with pytest.raises(MemoryBudgetExceeded):
            t.resize(aid, 2000)

    def test_exception_carries_details(self):
        t = MemoryTracker(budget=100)
        try:
            t.alloc("big", 500)
        except MemoryBudgetExceeded as e:
            assert e.budget == 100
            assert e.requested == 500

    def test_unbudgeted_never_raises(self):
        t = MemoryTracker()
        t.alloc("huge", 10**15)


class TestOOMStories:
    """The paper's machine-size feasibility results, in miniature."""

    def test_full_gain_table_ooms_where_sparse_fits(self):
        """kmer_V1r, k=1000: the O(nk) table exceeds the machine, the O(m)
        table partitions happily (Section VI-B)."""
        g = gen.kmer(3000, degree=4, seed=18)
        k = 128
        # budget sized between the sparse and full-table peaks
        probe = repro.partition(g, k, C.terapart_fm(seed=1, p=96))
        budget = int(probe.peak_bytes * 2.0)

        with pytest.raises(MemoryBudgetExceeded):
            repro.partition(
                g,
                k,
                C.terapart_fm_full_table(seed=1, p=96),
                tracker=MemoryTracker(budget=budget),
            )
        result = repro.partition(
            g,
            k,
            C.terapart_fm(seed=1, p=96),
            tracker=MemoryTracker(budget=budget),
        )
        assert result.balanced

    def test_kaminpar_ooms_where_terapart_fits(self):
        """hyperlink: KaMinPar would need 3.4 TiB on the 1.5 TiB machine;
        TeraPart fits (Section VI-A2)."""
        g = gen.weblike(6000, avg_degree=18, seed=35)
        k = 64
        probe = repro.partition(g, k, C.terapart(seed=1, p=96))
        budget = int(probe.peak_bytes * 2.5)
        with pytest.raises(MemoryBudgetExceeded):
            repro.partition(
                g,
                k,
                C.kaminpar(seed=1, p=96),
                tracker=MemoryTracker(budget=budget),
            )
        result = repro.partition(
            g, k, C.terapart(seed=1, p=96), tracker=MemoryTracker(budget=budget)
        )
        assert result.balanced
