"""Property-based tests (hypothesis) for incremental repartitioning.

The service's warm-start claim, stated as an invariant: after any batch
sequence of random deltas, a request returns a partition that is (a)
valid for the *drifted* graph, (b) balanced, and (c) within
``(1 + SLACK)`` of the cut a from-scratch full multilevel run finds on
the same drifted graph — across seeds and drift levels, including
levels that trip the fallback to a full repartition.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core import config as C
from repro.core.config import ServeConfig
from repro.core.partition import PartitionedGraph
from repro.graph import generators as gen
from repro.serve import ServiceHandle, random_delta

#: refinement-only quality headroom vs a fresh multilevel run.  The smoke
#: benchmark holds warm starts within 5% of scratch; tiny random graphs
#: under aggressive random churn are far noisier, so the *invariant* bound
#: is loose — the tight bound is the gated benchmark's job.
SLACK = 0.5

K = 4
EPSILON = 0.03
CFG = C.terapart(epsilon=EPSILON)
BASE = gen.weblike(250, avg_degree=8, seed=9)

#: delta size as a fraction of the graph's undirected edges per batch.
#: 0.002 stays far below the drift threshold (warm path); 0.2 over two
#: batches crosses it (fallback-to-full path).
DRIFT_LEVELS = (0.002, 0.02, 0.2)


class TestIncrementalRepartition:
    @given(
        seed=st.integers(0, 2**20),
        drift=st.sampled_from(DRIFT_LEVELS),
        batches=st.integers(1, 3),
    )
    @settings(max_examples=10, deadline=None)
    def test_valid_balanced_and_near_scratch(self, seed, drift, batches):
        rng = np.random.default_rng(seed)
        per_batch = max(1, int(BASE.m * drift))
        with ServiceHandle(CFG, ServeConfig()) as h:
            h.register_graph("g", BASE)
            h.partition("g", K)  # the anchor full run
            result = None
            for _ in range(batches):
                h.apply_delta(
                    "g",
                    random_delta(
                        h.service._entries["g"].graph,
                        rng,
                        n_add=per_batch,
                        n_remove=per_batch,
                    ),
                )
                result = h.partition("g", K)
            final_graph = h.service._entries["g"].graph
            snap = h.metrics_snapshot()

        # (a) validity: right length, in-range blocks, cut recounts
        assert len(result.partition) == final_graph.n
        pg = PartitionedGraph(final_graph, K, result.partition)
        pg.validate()
        assert result.cut == pg.cut_weight()

        # (b) balance: the service's own flag agrees with a recount
        assert result.balanced
        assert pg.is_balanced(EPSILON + 1e-9)

        # (c) quality: within (1 + SLACK) of a from-scratch full run
        scratch = repro.partition(final_graph, K, CFG)
        assert result.cut <= (1.0 + SLACK) * max(scratch.cut, 1)

        # every request was served by exactly one of the three modes
        served = (
            snap.get("serve.full_runs", 0)
            + snap.get("serve.warm_runs", 0)
            + snap.get("serve.cache_hits", 0)
        )
        assert served == snap["serve.requests"]

    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=5, deadline=None)
    def test_high_drift_falls_back_to_full(self, seed):
        """Past the drift threshold the service must *not* warm start."""
        rng = np.random.default_rng(seed)
        scfg = ServeConfig(drift_threshold=0.01)
        with ServiceHandle(CFG, scfg) as h:
            h.register_graph("g", BASE)
            h.partition("g", K)
            h.apply_delta(
                "g",
                random_delta(
                    BASE, rng, n_add=BASE.m // 10, n_remove=BASE.m // 10
                ),
            )
            r = h.partition("g", K)
            snap = h.metrics_snapshot()
        assert r.mode == "full"
        assert snap["serve.fallback_drift"] == 1
        assert r.drift == 0.0  # a full run resets the drift anchor
