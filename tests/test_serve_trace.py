"""Tests for workload traces and the service benchmark record path."""

import numpy as np

from repro.core import config as C
from repro.core.config import ServeConfig
from repro.graph import generators as gen
from repro.serve import ServiceHandle, make_trace, replay


class TestMakeTrace:
    def test_deterministic(self):
        g = gen.weblike(200, avg_degree=8, seed=1)
        t1 = make_trace("g", g, 4, seed=7)
        t2 = make_trace("g", g, 4, seed=7)
        assert len(t1) == len(t2)
        for a, b in zip(t1, t2):
            assert a.kind == b.kind and a.concurrency == b.concurrency
            if a.delta is not None:
                assert np.array_equal(a.delta.add_edges, b.delta.add_edges)

    def test_shape(self):
        g = gen.weblike(200, avg_degree=8, seed=1)
        trace = make_trace("g", g, 4, repeat_burst=3, delta_batches=2)
        kinds = [e.kind for e in trace]
        assert kinds.count("delta") == 2
        # the cold concurrent burst leads; repeats precede the first delta
        assert kinds[0] == "request" and trace[0].concurrency > 1
        assert trace[1].kind == "request" and trace[1].concurrency == 1


class TestReplay:
    def test_report_covers_all_modes(self):
        g = gen.weblike(250, avg_degree=8, seed=2)
        trace = make_trace("g", g, 4, seed=0, repeat_burst=2,
                           delta_batches=2, concurrency=3)
        with ServiceHandle(C.terapart(), ServeConfig()) as h:
            h.register_graph("g", g)
            report = replay(h, trace)
        run = report.to_run_dict()
        assert run["requests"] == report.requests > 0
        assert run["full_runs"] == 1
        assert run["warm_runs"] == 2
        assert run["cache_hits"] >= 1
        assert run["batched"] >= 1
        assert 0.0 < run["warm_over_full"] < 1.0
        assert run["p99_seconds"] >= run["p50_seconds"] >= 0.0
        assert 0.0 < run["cache_hit_rate"] < 1.0


class TestServiceBenchRecords:
    def test_bench_one_record_fields(self, tmp_path):
        from repro.bench.instances import Instance
        from repro.bench.service import run_service_bench
        from repro.obs.regress.rundb import RunDB, SERVICE_METRICS

        inst = Instance("tiny-grid", "grid2d", (12, 12))
        db = RunDB(tmp_path / "runs.jsonl")
        recs = run_service_bench(
            (inst,), (4,), (0,), rundb=db, bench="service-test",
            trace_kwargs={"repeat_burst": 2, "delta_batches": 1},
        )
        assert len(recs) == 1
        rec = recs[0]
        assert rec["kind"] == "service" and rec["bench"] == "service-test"
        for m in SERVICE_METRICS:
            assert m in rec["run"]
        assert rec["run"]["cut_overhead"] > 0
        assert rec["obs"]["counters"]["serve.requests"] > 0
        # appended to the DB and queryable by kind
        assert len(db.query(kind="service")) == 1
