"""Tests for bulk adjacency access helpers (repro.graph.access)."""

import numpy as np

from repro.graph.access import (
    chunk_adjacency,
    full_adjacency,
    segment_reduce_ratings,
    traversal_cost,
)
from repro.graph.compressed import compress_graph


class TestChunkAdjacency:
    def test_matches_per_vertex_access(self, family_graph):
        g = family_graph
        chunk = np.arange(0, g.n, 3, dtype=np.int64)
        owner, nbrs, wgts = chunk_adjacency(g, chunk)
        pos = 0
        for i, u in enumerate(chunk.tolist()):
            nu, wu = g.neighbors_and_weights(u)
            d = len(nu)
            assert np.all(owner[pos : pos + d] == i)
            assert np.array_equal(nbrs[pos : pos + d], np.asarray(nu))
            assert np.array_equal(wgts[pos : pos + d], np.asarray(wu))
            pos += d
        assert pos == len(owner)

    def test_compressed_matches_csr(self, web_graph):
        cg = compress_graph(web_graph)
        chunk = np.arange(0, web_graph.n, 7, dtype=np.int64)
        oc, nc, wc = chunk_adjacency(cg, chunk)
        ou, nu, wu = chunk_adjacency(web_graph, chunk)
        assert np.array_equal(oc, ou)
        assert np.array_equal(nc, nu)
        assert np.array_equal(wc, wu)

    def test_empty_chunk(self, grid_graph):
        owner, nbrs, wgts = chunk_adjacency(grid_graph, np.empty(0, dtype=np.int64))
        assert len(owner) == len(nbrs) == len(wgts) == 0

    def test_chunk_with_isolated_vertices(self):
        from repro.graph.builder import from_edges

        g = from_edges(5, np.array([[0, 1]]))
        owner, nbrs, _ = chunk_adjacency(g, np.array([2, 0, 3]))
        assert owner.tolist() == [1]
        assert nbrs.tolist() == [1]

    def test_full_adjacency(self, tiny_graph):
        src, dst, w = full_adjacency(tiny_graph)
        assert len(src) == tiny_graph.num_directed_edges
        # symmetric edge multiset
        fwd = set(zip(src.tolist(), dst.tolist()))
        assert all((b, a) in fwd for a, b in fwd)


class TestSegmentReduce:
    def test_aggregates_weights_per_pair(self):
        owner = np.array([0, 0, 0, 1, 1], dtype=np.int64)
        clusters = np.array([5, 5, 7, 5, 5], dtype=np.int64)
        weights = np.array([1, 2, 3, 4, 5], dtype=np.int64)
        po, pc, pr = segment_reduce_ratings(owner, clusters, weights, 10)
        got = dict(zip(zip(po.tolist(), pc.tolist()), pr.tolist()))
        assert got == {(0, 5): 3, (0, 7): 3, (1, 5): 9}

    def test_output_sorted_by_owner(self):
        rng = np.random.default_rng(0)
        owner = rng.integers(0, 8, size=100)
        clusters = rng.integers(0, 20, size=100)
        weights = rng.integers(1, 5, size=100)
        po, pc, _ = segment_reduce_ratings(owner, clusters, weights, 20)
        assert np.all(np.diff(po) >= 0)
        # within an owner, clusters are sorted and unique
        for o in np.unique(po):
            cs = pc[po == o]
            assert np.all(np.diff(cs) > 0)

    def test_empty_input(self):
        e = np.empty(0, dtype=np.int64)
        po, pc, pr = segment_reduce_ratings(e, e, e, 10)
        assert len(po) == 0

    def test_total_weight_preserved(self):
        rng = np.random.default_rng(1)
        owner = rng.integers(0, 5, size=200)
        clusters = rng.integers(0, 30, size=200)
        weights = rng.integers(1, 9, size=200)
        _, _, pr = segment_reduce_ratings(owner, clusters, weights, 30)
        assert pr.sum() == weights.sum()


class TestTraversalCost:
    def test_csr_cost(self, grid_graph):
        b, f = traversal_cost(grid_graph)
        assert b == 16.0 and f == 1.0

    def test_compressed_costs_fewer_bytes_more_work(self, web_graph):
        cg = compress_graph(web_graph)
        b, f = traversal_cost(cg)
        assert b < 16.0
        assert f > 1.0
