"""Unit tests for the span tracer core (obs layer)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.tracker import MemoryTracker
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanTracer


class FakeClock:
    """Deterministic clock: advances 1.0 per reading."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


def test_spans_nest_and_record_parentage():
    tr = SpanTracer(clock=FakeClock())
    with tr.span("outer"):
        with tr.span("inner-a"):
            pass
        with tr.span("inner-b"):
            pass
    assert [s.name for s in tr.spans] == ["outer", "inner-a", "inner-b"]
    outer, a, b = tr.spans
    assert outer.parent == -1
    assert a.parent == outer.sid and b.parent == outer.sid
    assert a.t_start >= outer.t_start
    assert outer.t_end >= b.t_end
    assert outer.duration > 0


def test_counters_accumulate_globally_and_per_span():
    tr = SpanTracer()
    with tr.span("x"):
        tr.add("edges", 10)
        with tr.span("y"):
            tr.add("edges", 5)
    assert tr.counters["edges"] == 15
    assert tr.spans[0].counters["edges"] == 10  # own increments only
    assert tr.spans[1].counters["edges"] == 5


def test_phase_span_couples_to_tracker_peak():
    tracker = MemoryTracker()
    tr = SpanTracer(tracker)
    with tr.phase("work"):
        aid = tracker.alloc("buf", 1000, "scratch")
        tracker.free(aid)
    span = tr.spans[0]
    assert span.category == "phase"
    assert span.tracker_path == "work"
    # the span's peak is the ledger's per-phase peak, byte-for-byte
    assert span.mem_peak == tracker.phase_peak("work") == 1000
    assert span.mem_exit == 0


def test_child_peak_propagates_to_parent():
    tracker = MemoryTracker()
    tr = SpanTracer(tracker)
    with tr.phase("outer"):
        with tr.phase("inner"):
            aid = tracker.alloc("big", 5000, "scratch")
            tracker.free(aid)
    outer, inner = tr.spans
    assert inner.mem_peak == 5000
    assert outer.mem_peak >= 5000


def test_span_tree_shape():
    tr = SpanTracer()
    with tr.span("a"):
        with tr.span("b"):
            pass
    with tr.span("c"):
        pass
    assert tr.span_tree() == [
        {"name": "a", "children": [{"name": "b"}]},
        {"name": "c"},
    ]


def test_finish_closes_leaked_spans():
    tr = SpanTracer()
    ctx = tr.span("leaked")
    ctx.__enter__()
    tr.finish()
    assert tr.spans[0].t_end >= tr.spans[0].t_start
    assert tr.current_span is None


def test_record_chunk_aggregates_per_phase_and_tid():
    tr = SpanTracer()
    tr.record_chunk("lp", 0, 512, 0.5)
    tr.record_chunk("lp", 0, 256, 0.25)
    tr.record_chunk("lp", 1, 128, 0.1)
    ts = tr.thread_slices[("lp", 0)]
    assert ts.chunks == 2 and ts.items == 768
    assert ts.seconds == pytest.approx(0.75)
    assert tr.thread_slices[("lp", 1)].items == 128


def test_null_tracer_is_inert_and_shared():
    nt = NULL_TRACER
    assert isinstance(nt, NullTracer)
    assert not nt.enabled
    with nt.span("whatever") as s:
        assert s is None
    nt.add("anything", 42)
    nt.record_chunk("p", 0, 1, 1.0)
    nt.finish()  # all no-ops, nothing to assert beyond "did not raise"


def test_null_tracer_phase_degenerates_to_tracker_phase():
    tracker = MemoryTracker()
    with NULL_TRACER.phase("work", tracker):
        tracker.alloc("buf", 100, "scratch")
    # the ledger saw the phase exactly as if ctx.phase had never existed
    assert tracker.phase_peak("work") == 100


def test_tracer_never_touches_numpy_rng_state():
    rng = np.random.default_rng(1234)
    before = rng.bit_generator.state
    tr = SpanTracer(MemoryTracker())
    with tr.phase("p"):
        with tr.span("s"):
            tr.add("c", 1)
    tr.finish()
    assert rng.bit_generator.state == before
