"""Tests for the distributed graph (shards, ghosts, compression)."""

import numpy as np
import pytest

from repro.dist.comm import SimComm
from repro.dist.dgraph import distribute_graph, _split_ranges
from repro.graph import generators as gen


class TestSplitRanges:
    def test_covers_everything(self):
        r = _split_ranges(10, 3)
        assert r.tolist() == [0, 4, 7, 10]

    def test_exact_division(self):
        assert _split_ranges(9, 3).tolist() == [0, 3, 6, 9]

    def test_more_ranks_than_vertices(self):
        r = _split_ranges(2, 4)
        assert r[-1] == 2 and len(r) == 5


class TestDistributeGraph:
    @pytest.mark.parametrize("compressed", [False, True])
    def test_shards_cover_adjacency(self, compressed):
        g = gen.weblike(600, avg_degree=10, seed=3)
        comm = SimComm(4)
        dg = distribute_graph(g, comm, compressed=compressed)
        for shard in dg.shards:
            for lu in range(shard.n_local):
                u = shard.lo + lu
                nv, wv = shard.neighbors_and_weights(lu)
                ne, we = g.neighbors_and_weights(u)
                order = np.argsort(np.asarray(nv), kind="stable")
                assert np.array_equal(
                    np.asarray(nv)[order], np.sort(np.asarray(ne))
                )
                assert int(np.asarray(wv).sum()) == int(np.asarray(we).sum())

    def test_ghosts_are_nonlocal_neighbors(self):
        g = gen.grid2d(12, 12)
        comm = SimComm(3)
        dg = distribute_graph(g, comm)
        for shard in dg.shards:
            assert np.all((shard.ghosts < shard.lo) | (shard.ghosts >= shard.hi))
            # every ghost really appears in some local adjacency
            all_nbrs = np.concatenate(
                [
                    np.asarray(shard.neighbors_and_weights(lu)[0])
                    for lu in range(shard.n_local)
                ]
            ) if shard.n_local else np.empty(0, dtype=np.int64)
            for ghost in shard.ghosts.tolist():
                assert ghost in all_nbrs

    def test_compression_reduces_shard_bytes(self):
        g = gen.weblike(800, avg_degree=16, seed=4)
        raw = distribute_graph(g, SimComm(4), compressed=False)
        comp = distribute_graph(g, SimComm(4), compressed=True)
        for s_raw, s_comp in zip(raw.shards, comp.shards):
            assert s_comp.storage_bytes < s_raw.storage_bytes

    def test_per_rank_ledger_charged(self):
        g = gen.grid2d(10, 10)
        comm = SimComm(2)
        dg = distribute_graph(g, comm)
        for rank, shard in enumerate(dg.shards):
            assert (
                comm.trackers[rank].current_bytes
                == shard.storage_bytes + shard.ghost_bytes
            )
        dg.free()
        assert all(t.current_bytes == 0 for t in comm.trackers)

    def test_owner_of(self):
        g = gen.grid2d(10, 10)
        dg = distribute_graph(g, SimComm(4))
        for v in (0, 25, 50, 99):
            r = int(dg.owner_of(v))
            assert dg.ranges[r] <= v < dg.ranges[r + 1]

    def test_totals_preserved(self):
        g = gen.textlike(300, seed=5)
        dg = distribute_graph(g, SimComm(3), compressed=True)
        assert dg.n == g.n
        assert dg.m == g.m
        assert dg.total_vertex_weight == g.total_vertex_weight
