"""Tests for the ASCII renderers in repro.bench.reporting.

The composed golden report (tests/data/golden_bench_report.txt) pins the
exact table / waterfall / series formatting — regenerate it by running
this file with REGEN_GOLDEN=1 in the environment.
"""

import os
from pathlib import Path

import pytest

from repro.bench.reporting import (
    _fmt,
    fmt_bytes,
    render_series,
    render_table,
    render_waterfall,
)

GOLDEN = Path(__file__).parent / "data" / "golden_bench_report.txt"


def compose_report() -> str:
    """A deterministic report exercising every renderer."""
    table = render_table(
        ["algorithm", "instance", "cut", "ratio"],
        [
            ("terapart", "fem-grid", 162, 1.0),
            ("kaminpar", "fem-grid", 158, 0.9753),
            ("terapart-fm", "web-large", 20875, 1234.5678),
            ("mt-metis", "kmer-A2a", 0, 0.0001234),
        ],
        title="Set A cuts (golden)",
    )
    waterfall = render_waterfall(
        [
            ("input graph", 1024.0),
            ("compression", 256.5),
            ("coarsening", 890.25),
            ("gain tables", 64.125),
        ]
    )
    series = render_series(
        "speedup", [1, 2, 4, 8], [1.0, 1.9, 3.6, 6.55], unit="x"
    )
    bytes_line = " / ".join(
        fmt_bytes(v) for v in (512, 2048, 5.5 * 1024**2, 3.25 * 1024**3, 2.0 * 1024**4)
    )
    return "\n\n".join([table, waterfall, series, bytes_line]) + "\n"


class TestGoldenReport:
    def test_matches_golden(self):
        text = compose_report()
        if os.environ.get("REGEN_GOLDEN"):
            GOLDEN.write_text(text)
        assert GOLDEN.exists(), "run with REGEN_GOLDEN=1 once to create"
        assert text == GOLDEN.read_text()


class TestRenderTable:
    def test_empty_rows(self):
        out = render_table(["a", "bb"], [])
        lines = out.splitlines()
        assert lines[0] == "a | bb"
        assert lines[1] == "--+---"

    def test_column_widths_fit_widest_cell(self):
        out = render_table(["h"], [["wide-cell"], ["x"]])
        rows = out.splitlines()
        assert all(len(r) == len(rows[0]) for r in rows)

    def test_title_is_first_line(self):
        out = render_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"


class TestFmt:
    def test_zero_float(self):
        assert _fmt(0.0) == "0"

    def test_small_and_large_use_3g(self):
        assert _fmt(0.001234) == "0.00123"
        assert _fmt(123456.0) == "1.23e+05"

    def test_mid_range_two_decimals(self):
        assert _fmt(3.14159) == "3.14"

    def test_non_float_passthrough(self):
        assert _fmt(7) == "7"
        assert _fmt("x") == "x"


class TestFmtBytes:
    @pytest.mark.parametrize(
        "n,expect",
        [
            (0, "0 B"),
            (1023, "1023 B"),
            (1024, "1.00 KiB"),
            (5.5 * 1024**2, "5.50 MiB"),
            (3.25 * 1024**3, "3.25 GiB"),
            (2.0 * 1024**4, "2.00 TiB"),
            (4096 * 1024**4, "4096.00 TiB"),  # TiB is the cap, no overflow
        ],
    )
    def test_units(self, n, expect):
        assert fmt_bytes(n) == expect


class TestRenderWaterfall:
    def test_empty(self):
        assert render_waterfall([]) == "(empty)"

    def test_bars_scale_to_peak(self):
        out = render_waterfall([("a", 100.0), ("b", 50.0)])
        bars = [line.count("#") for line in out.splitlines()]
        assert bars[0] == 40 and bars[1] == 20

    def test_small_value_keeps_one_bar(self):
        out = render_waterfall([("a", 1000.0), ("b", 0.01)])
        assert out.splitlines()[1].count("#") == 1


class TestRenderSeries:
    def test_pairs_and_unit(self):
        out = render_series("mem", [1, 2], [10.0, 20.5], unit="GiB")
        assert out == "mem: 1: 10.00GiB, 2: 20.50GiB"
