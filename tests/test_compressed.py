"""Unit + property tests for the compressed graph representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators as gen
from repro.graph.builder import from_edges
from repro.graph.compressed import (
    CompressionConfig,
    compress_graph,
    decompress_graph,
    split_intervals,
)

from conftest import graphs_equal


class TestSplitIntervals:
    def test_detects_runs(self):
        nbrs = np.array([1, 2, 3, 7, 10, 11, 12, 13, 20])
        intervals, residuals = split_intervals(nbrs)
        assert intervals == [(1, 3), (10, 4)]
        assert residuals.tolist() == [7, 20]

    def test_short_runs_stay_residual(self):
        nbrs = np.array([1, 2, 5, 6, 9])
        intervals, residuals = split_intervals(nbrs)
        assert intervals == []
        assert residuals.tolist() == [1, 2, 5, 6, 9]

    def test_whole_range_is_one_interval(self):
        nbrs = np.arange(10, 20)
        intervals, residuals = split_intervals(nbrs)
        assert intervals == [(10, 10)]
        assert len(residuals) == 0

    def test_empty(self):
        intervals, residuals = split_intervals(np.empty(0, dtype=np.int64))
        assert intervals == [] and len(residuals) == 0

    def test_custom_min_len(self):
        nbrs = np.array([1, 2, 5, 6])
        intervals, _ = split_intervals(nbrs, min_len=2)
        assert intervals == [(1, 2), (5, 2)]


class TestRoundTrip:
    def test_families_roundtrip(self, family_graph):
        cg = compress_graph(family_graph)
        assert graphs_equal(decompress_graph(cg), family_graph)

    def test_roundtrip_without_intervals(self, family_graph):
        cg = compress_graph(family_graph, enable_intervals=False)
        assert graphs_equal(decompress_graph(cg), family_graph)

    def test_weighted_roundtrip(self, text_graph):
        assert text_graph.has_edge_weights
        cg = compress_graph(text_graph)
        assert cg.has_edge_weights
        assert graphs_equal(decompress_graph(cg), text_graph)

    def test_vertex_weights_preserved(self):
        g = from_edges(
            3, np.array([[0, 1], [1, 2]]), vwgt=np.array([5, 6, 7])
        )
        cg = compress_graph(g)
        assert cg.total_vertex_weight == 18
        assert np.array_equal(np.asarray(cg.vwgt), [5, 6, 7])

    def test_empty_graph(self):
        g = from_edges(4, np.zeros((0, 2), dtype=np.int64))
        cg = compress_graph(g)
        assert cg.n == 4 and cg.m == 0
        assert len(cg.neighbors(0)) == 0

    def test_isolated_vertices(self):
        g = from_edges(5, np.array([[0, 4]]))
        cg = compress_graph(g)
        for u in (1, 2, 3):
            assert cg.degree(u) == 0
            assert len(cg.neighbors(u)) == 0


class TestProtocol:
    def test_degrees_match(self, web_graph):
        cg = compress_graph(web_graph)
        assert np.array_equal(cg.degrees, web_graph.degrees)
        for u in range(0, web_graph.n, 37):
            assert cg.degree(u) == web_graph.degree(u)

    def test_first_edge_ids_match_indptr(self, grid_graph):
        cg = compress_graph(grid_graph)
        for u in range(grid_graph.n):
            assert cg.first_edge_id(u) == int(grid_graph.indptr[u])
        assert cg.first_edge_id(grid_graph.n) == grid_graph.num_directed_edges

    def test_incident_edge_ids(self, grid_graph):
        cg = compress_graph(grid_graph)
        u = grid_graph.n // 2
        assert np.array_equal(
            cg.incident_edge_ids(u), grid_graph.incident_edge_ids(u)
        )

    def test_totals_preserved(self, text_graph):
        cg = compress_graph(text_graph)
        assert cg.total_edge_weight == text_graph.total_edge_weight
        assert cg.total_vertex_weight == text_graph.total_vertex_weight
        assert cg.m == text_graph.m


class TestChunking:
    def test_high_degree_chunked_roundtrip(self):
        g = gen.star(5000)
        cg = compress_graph(g, high_degree_threshold=1000, chunk_length=100)
        assert cg.stats.num_chunked_vertices == 1
        assert graphs_equal(decompress_graph(cg), g)

    def test_chunk_boundary_exact_multiple(self):
        g = gen.star(1001)  # hub degree exactly 1000
        cg = compress_graph(g, high_degree_threshold=500, chunk_length=250)
        assert graphs_equal(decompress_graph(cg), g)

    def test_weighted_high_degree(self):
        n = 3000
        edges = np.stack(
            [np.zeros(n - 1, dtype=np.int64), np.arange(1, n, dtype=np.int64)],
            axis=1,
        )
        w = (np.arange(1, n) % 97 + 1).astype(np.int64)
        g = from_edges(n, edges, w)
        cg = compress_graph(g, high_degree_threshold=512, chunk_length=128)
        assert graphs_equal(decompress_graph(cg), g)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CompressionConfig(chunk_length=0)
        with pytest.raises(ValueError):
            CompressionConfig(high_degree_threshold=10, chunk_length=100)


class TestCompressionQuality:
    def test_weblike_beats_kmer(self):
        """Locality drives ratios: web >> kmer (Fig. 10's family spread)."""
        web = gen.weblike(4000, avg_degree=20, seed=1)
        km = gen.kmer(4000, degree=4, seed=1)
        r_web = compress_graph(web).stats.ratio
        r_kmer = compress_graph(km).stats.ratio
        assert r_web > 1.5 * r_kmer

    def test_intervals_help_weblike(self):
        """Interval encoding is crucial on web graphs (Fig. 6 right)."""
        web = gen.weblike(4000, avg_degree=20, seed=2)
        with_iv = compress_graph(web).stats
        without = compress_graph(web, enable_intervals=False).stats
        assert with_iv.compressed_bytes < without.compressed_bytes
        assert with_iv.num_intervals > 0

    def test_compressed_smaller_than_csr(self, family_graph):
        cg = compress_graph(family_graph)
        assert cg.nbytes < family_graph.nbytes

    def test_stats_consistency(self, web_graph):
        st_ = compress_graph(web_graph).stats
        assert st_.num_neighborhoods == web_graph.n
        assert st_.compressed_bytes > 0
        assert st_.ratio > 1.0


class TestPropertyRoundTrip:
    @given(
        n=st.integers(min_value=2, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31),
        density=st.floats(min_value=0.0, max_value=0.5),
        weighted=st.booleans(),
        intervals=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_graph_roundtrip(self, n, seed, density, weighted, intervals):
        rng = np.random.default_rng(seed)
        e = max(1, int(n * n * density / 2))
        edges = rng.integers(0, n, size=(e, 2))
        weights = rng.integers(1, 1000, size=e) if weighted else None
        g = from_edges(n, edges, weights)
        cg = compress_graph(g, enable_intervals=intervals)
        assert graphs_equal(decompress_graph(cg), g)
