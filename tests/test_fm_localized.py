"""Tests for localized multi-search FM."""

import numpy as np
import pytest

from repro.core.config import FMConfig, GainTableKind, terapart
from repro.core.context import PartitionContext
from repro.core.partition import PartitionedGraph, max_block_weight
from repro.core.refinement.balancer import rebalance
from repro.core.refinement.fm_localized import fm_refine_localized
from repro.core.refinement.fm_refine import fm_refine
from repro.graph import generators as gen
from repro.memory import MemoryTracker


def make_ctx(graph, k=4, seed=0):
    return PartitionContext(
        config=terapart(seed=seed),
        k=k,
        total_vertex_weight=graph.total_vertex_weight,
        tracker=MemoryTracker(),
    )


def random_partition(graph, k, seed=0):
    rng = np.random.default_rng(seed)
    return PartitionedGraph(
        graph, k, rng.integers(0, k, size=graph.n).astype(np.int32)
    )


class TestLocalizedFM:
    @pytest.mark.parametrize("kind", list(GainTableKind))
    def test_improves_cut(self, grid_graph, kind):
        pg = random_partition(grid_graph, 4, seed=1)
        before = pg.cut_weight()
        ctx = make_ctx(grid_graph)
        lmax = max_block_weight(grid_graph.total_vertex_weight, 4, 0.05)
        imp = fm_refine_localized(pg, ctx, lmax, FMConfig(gain_table=kind))
        assert pg.cut_weight() < before
        assert imp == before - pg.cut_weight()
        pg.validate()

    def test_respects_balance(self, family_graph):
        pg = random_partition(family_graph, 4, seed=2)
        lmax = max_block_weight(family_graph.total_vertex_weight, 4, 0.03)
        rebalance(pg, lmax)
        ctx = make_ctx(family_graph)
        fm_refine_localized(pg, ctx, lmax)
        assert pg.block_weights.max() <= lmax

    def test_comparable_quality_to_global_fm(self, rgg_graph):
        lmax = max_block_weight(rgg_graph.total_vertex_weight, 4, 0.05)
        pg_l = random_partition(rgg_graph, 4, seed=3)
        pg_g = PartitionedGraph(rgg_graph, 4, pg_l.partition.copy())
        fm_refine_localized(pg_l, make_ctx(rgg_graph), lmax)
        fm_refine(pg_g, make_ctx(rgg_graph), lmax)
        # within 2x of each other (they find different local optima)
        assert pg_l.cut_weight() < 2 * max(1, pg_g.cut_weight())

    def test_region_limit_bounds_searches(self, grid_graph):
        """A tiny region cap still terminates and improves."""
        pg = random_partition(grid_graph, 4, seed=4)
        before = pg.cut_weight()
        ctx = make_ctx(grid_graph)
        lmax = max_block_weight(grid_graph.total_vertex_weight, 4, 0.05)
        fm_refine_localized(pg, ctx, lmax, max_region=4)
        assert pg.cut_weight() <= before

    def test_no_boundary_noop(self):
        from repro.graph.builder import from_edges

        edges = [[i, j] for i in range(4) for j in range(i + 1, 4)]
        g = from_edges(4, np.array(edges))
        pg = PartitionedGraph(g, 2, np.zeros(4, dtype=np.int32))
        ctx = make_ctx(g, k=2)
        assert fm_refine_localized(pg, ctx, 10) == 0

    def test_tracker_leak_free(self, grid_graph):
        pg = random_partition(grid_graph, 4, seed=5)
        ctx = make_ctx(grid_graph)
        fm_refine_localized(pg, ctx, 100)
        ctx.tracker.assert_empty()
