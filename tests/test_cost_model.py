"""Unit tests for the work/span/bandwidth cost model."""

from repro.parallel.cost_model import CostModel, MachineModel
from repro.parallel.runtime import WorkStats


def _stats(**kw) -> WorkStats:
    s = WorkStats("test")
    for k, v in kw.items():
        setattr(s, k, v)
    return s


class TestPhaseTime:
    def test_pure_compute_scales_linearly(self):
        cm = CostModel(MachineModel(bandwidth_cores=10**9))
        s = _stats(work=1e9)
        t1 = cm.phase_time(s, 1).seconds
        t10 = cm.phase_time(s, 10).seconds
        assert abs(t1 / t10 - 10) < 1e-6

    def test_sequential_work_does_not_scale(self):
        cm = CostModel()
        s = _stats(work=1e9, sequential_work=1e9)  # all sequential
        t1 = cm.phase_time(s, 1).compute_seconds
        t96 = cm.phase_time(s, 96).compute_seconds
        assert abs(t1 - t96) < 1e-9

    def test_bandwidth_saturates(self):
        m = MachineModel(bandwidth_cores=48)
        cm = CostModel(m)
        s = _stats(bytes_moved=1e12)
        t48 = cm.phase_time(s, 48).bandwidth_seconds
        t96 = cm.phase_time(s, 96).bandwidth_seconds
        assert t48 == t96  # flat beyond the saturation point

    def test_atomics_parallelize_with_contention_overhead(self):
        cm = CostModel()
        s = _stats(atomic_ops=10**6)
        a1 = cm.phase_time(s, 1).atomic_seconds
        a96 = cm.phase_time(s, 96).atomic_seconds
        # atomics spread over threads, so total time drops with p ...
        assert a96 < a1
        # ... but contention makes them scale sub-linearly
        assert a96 > a1 / 96


class TestSpeedups:
    def test_speedup_bounded_by_p(self):
        cm = CostModel(MachineModel(bandwidth_cores=10**9))
        phases = {"a": _stats(work=1e9)}
        for p in (2, 12, 96):
            assert cm.speedup(phases, p) <= p + 1e-9

    def test_bandwidth_limits_speedup(self):
        """The paper's observation: memory-bound phases cap speedup."""
        m = MachineModel(bandwidth_cores=48)
        cm = CostModel(m)
        # heavily memory-bound workload
        phases = {"a": _stats(work=1e6, bytes_moved=1e12)}
        assert cm.speedup(phases, 96) <= 48 * 1.05

    def test_amdahl_with_sequential_fraction(self):
        cm = CostModel(MachineModel(bandwidth_cores=10**9))
        phases = {"a": _stats(work=1e9, sequential_work=1e8)}
        s96 = cm.speedup(phases, 96)
        # Amdahl bound: 1 / (0.1 + 0.9/96)
        assert s96 < 1 / (0.1 + 0.9 / 96) + 1e-6
        assert s96 > 5

    def test_speedup_curve_monotone(self):
        cm = CostModel()
        phases = {"a": _stats(work=1e9, bytes_moved=1e10)}
        curve = cm.speedup_curve(phases)
        vals = [curve[p] for p in (12, 24, 48, 96)]
        assert vals == sorted(vals)

    def test_larger_instances_scale_better(self):
        """Figure 5's pattern: sequential IP amortises on larger graphs."""
        cm = CostModel(MachineModel(bandwidth_cores=10**9))
        fixed_sequential = 1e7
        small = {"a": _stats(work=1e8, sequential_work=fixed_sequential)}
        large = {"a": _stats(work=1e10, sequential_work=fixed_sequential)}
        assert cm.speedup(large, 96) > cm.speedup(small, 96)
