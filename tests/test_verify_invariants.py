"""Tests for the phase-boundary invariant layer (repro.verify.invariants)."""

import numpy as np
import pytest

import repro
from repro.core.config import DebugConfig, terapart, terapart_fm
from repro.core.context import PartitionContext
from repro.core.coarsening.lp_clustering import label_propagation_clustering
from repro.core.coarsening.one_pass_contraction import contract_one_pass
from repro.core.config import PartitionerConfig
from repro.core.partition import PartitionedGraph
from repro.core.refinement.gain_table import FullGainTable, SparseGainTable
from repro.graph import generators as gen
from repro.graph.compressed import compress_graph
from repro.graph.csr import CSRGraph
from repro.verify import (
    InvariantViolation,
    check_clustering,
    check_coarse_mapping,
    check_compressed_roundtrip,
    check_csr,
    check_gain_table_vs_recompute,
    check_partition,
)


@pytest.fixture
def graph():
    return gen.rgg2d(400, avg_degree=8, seed=2)


@pytest.fixture
def pgraph(graph):
    part = (np.arange(graph.n) % 4).astype(np.int32)
    return PartitionedGraph(graph, 4, part)


def _contraction(graph):
    cfg = PartitionerConfig(p=4)
    ctx = PartitionContext(
        config=cfg, k=2, total_vertex_weight=graph.total_vertex_weight
    )
    clustering = label_propagation_clustering(
        graph, ctx, max(1, graph.total_vertex_weight // 8)
    )
    out = contract_one_pass(
        graph, clustering.clusters, clustering.cluster_weights, ctx
    )
    return clustering, out


class TestCheckCsr:
    def test_valid_graph_passes(self, graph):
        check_csr(graph)

    def test_asymmetric_graph_fails_with_phase(self):
        g = CSRGraph(np.array([0, 1, 1]), np.array([1]))
        with pytest.raises(InvariantViolation, match=r"\[coarsen\].*symmetric"):
            check_csr(g, phase="coarsen")


class TestCheckPartition:
    def test_valid_partition_passes(self, pgraph):
        check_partition(pgraph)

    def test_corrupted_block_weights_fail(self, pgraph):
        pgraph.block_weights[2] += 5
        with pytest.raises(InvariantViolation, match="block 2 weight out of sync"):
            check_partition(pgraph)

    def test_out_of_range_block_fails(self, pgraph):
        pgraph.partition[7] = 9
        with pytest.raises(InvariantViolation, match="vertex 7"):
            check_partition(pgraph)

    def test_balance_ceiling_enforced_when_requested(self, graph):
        part = np.zeros(graph.n, dtype=np.int32)  # everything in block 0
        pg = PartitionedGraph(graph, 4, part)
        check_partition(pg)  # structurally fine
        with pytest.raises(InvariantViolation, match="exceeds"):
            check_partition(pg, epsilon=0.03)


class TestCheckClustering:
    def test_valid_clustering_passes(self, graph):
        cfg = PartitionerConfig(p=4)
        ctx = PartitionContext(
            config=cfg, k=2, total_vertex_weight=graph.total_vertex_weight
        )
        res = label_propagation_clustering(
            graph, ctx, max(1, graph.total_vertex_weight // 8)
        )
        check_clustering(graph, res.clusters, res.cluster_weights)

    def test_desynced_weights_fail(self, graph):
        clusters = np.arange(graph.n, dtype=np.int64)
        weights = np.asarray(graph.vwgt).astype(np.int64).copy()
        weights[5] += 1
        with pytest.raises(InvariantViolation, match="cluster 5"):
            check_clustering(graph, clusters, weights)

    def test_out_of_range_leader_fails(self, graph):
        clusters = np.arange(graph.n, dtype=np.int64)
        clusters[0] = graph.n + 3
        with pytest.raises(InvariantViolation, match="out of range"):
            check_clustering(graph, clusters, np.asarray(graph.vwgt))


class TestCheckCoarseMapping:
    def test_real_contraction_passes(self, graph):
        _, out = _contraction(graph)
        check_coarse_mapping(graph, out.coarse, out.fine_to_coarse)

    def test_out_of_range_mapping_fails(self, graph):
        _, out = _contraction(graph)
        f2c = out.fine_to_coarse.copy()
        f2c[0] = out.coarse.n + 7
        with pytest.raises(InvariantViolation, match="out-of-range coarse id"):
            check_coarse_mapping(graph, out.coarse, f2c)

    def test_weight_nonconservation_fails(self, graph):
        _, out = _contraction(graph)
        f2c = out.fine_to_coarse.copy()
        # remap one fine vertex to a different coarse vertex: vertex weight
        # sums no longer match
        f2c[0] = (f2c[0] + 1) % out.coarse.n
        with pytest.raises(InvariantViolation):
            check_coarse_mapping(graph, out.coarse, f2c)


class TestCheckCompressedRoundtrip:
    def test_roundtrip_passes(self, graph):
        check_compressed_roundtrip(graph, compress_graph(graph))

    def test_sampled_roundtrip_passes(self, graph):
        check_compressed_roundtrip(graph, compress_graph(graph), sample=32)

    def test_size_mismatch_fails(self, graph):
        other = gen.rgg2d(200, avg_degree=8, seed=3)
        with pytest.raises(InvariantViolation, match="mismatch"):
            check_compressed_roundtrip(graph, compress_graph(other))

    def test_corrupted_weights_fail(self):
        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 0]], dtype=np.int64)
        from repro.graph.builder import from_edges

        g = from_edges(4, edges, np.array([2, 3, 4, 5], dtype=np.int64))
        cg = compress_graph(g)
        g.adjwgt[0] += 1  # tamper with the reference CSR
        with pytest.raises(InvariantViolation, match="decodes to"):
            check_compressed_roundtrip(g, cg)


class TestCheckGainTable:
    def test_full_table_passes(self, pgraph):
        check_gain_table_vs_recompute(FullGainTable(pgraph), pgraph)

    def test_sparse_table_passes(self, pgraph):
        check_gain_table_vs_recompute(SparseGainTable(pgraph), pgraph)

    def test_corrupted_full_table_fails(self, pgraph):
        table = FullGainTable(pgraph)
        u = int(np.argmax(np.asarray(pgraph.graph.degrees)))
        b = int(table.adjacent_blocks(u)[0])
        table._table[u, b] += 1
        with pytest.raises(InvariantViolation):
            check_gain_table_vs_recompute(table, pgraph)

    def test_corrupted_sparse_table_fails(self, pgraph):
        table = SparseGainTable(pgraph)
        nz = np.flatnonzero(table._vals)
        table._vals[nz[0]] += 1
        with pytest.raises(InvariantViolation):
            check_gain_table_vs_recompute(table, pgraph)


class TestDriverIntegration:
    def test_selfcheck_report_populated(self, graph):
        cfg = terapart(p=4).with_(
            debug=DebugConfig(validation_level=2, detect_conflicts=True)
        )
        result = repro.partition(graph, 4, cfg)
        sc = result.selfcheck
        assert sc is not None
        assert sc["invariant_checks"] > 0
        assert sc["conflicts"] == []
        assert sc["regions_checked"] > 0
        assert sc["schedule_policy"] == "issue"

    def test_selfcheck_off_by_default(self, graph):
        result = repro.partition(graph, 4, terapart(p=4))
        assert result.selfcheck is None

    def test_fm_gain_table_checked_at_level_2(self, graph):
        cfg = terapart_fm(p=4).with_(debug=DebugConfig(validation_level=2))
        result = repro.partition(graph, 4, cfg)
        assert result.selfcheck is not None

    def test_schedule_policy_override_still_valid(self, graph):
        cfg = terapart(p=4).with_(
            debug=DebugConfig(
                validation_level=1,
                detect_conflicts=True,
                schedule_policy="random",
                schedule_seed=11,
            )
        )
        result = repro.partition(graph, 4, cfg)
        assert result.selfcheck["conflicts"] == []
        assert result.balanced
