"""Ablation: the bump threshold T_bump (DESIGN.md section 5).

T_bump trades first-phase hash-table memory (grows with T) against
second-phase traffic (atomic flushes for every vertex with nc(u) >= T).
The paper fixes T = 10 000; this ablation sweeps scaled values and checks
the mechanism: clustering memory grows with T while bumped-vertex counts
shrink, and the clustering outcome itself is unchanged (the two phases
compute identical ratings).
"""

import numpy as np

from repro.bench.reporting import render_table
from repro.core.config import CoarseningConfig, terapart
from repro.core.context import PartitionContext
from repro.core.coarsening.lp_clustering import label_propagation_clustering
from repro.graph import generators as gen
from repro.memory import MemoryTracker

T_VALUES = [64, 256, 1024, 4096]
P = 96


def run_experiment():
    graph = gen.weblike(9000, avg_degree=24, seed=6)
    rows = []
    baseline_clusters = None
    for t in T_VALUES:
        cfg = terapart(seed=1, p=P).with_(
            coarsening=CoarseningConfig(t_bump=t)
        )
        ctx = PartitionContext(
            config=cfg,
            k=16,
            total_vertex_weight=graph.total_vertex_weight,
            tracker=MemoryTracker(),
        )
        with ctx.tracker.phase("clustering"):
            res = label_propagation_clustering(
                graph, ctx, ctx.max_cluster_weight()
            )
        if baseline_clusters is None:
            baseline_clusters = res.clusters.copy()
        rows.append(
            {
                "t": t,
                "mem": ctx.tracker.phase_peak("clustering"),
                "bumped": sum(res.bumped_per_round),
                "same_clusters": bool(
                    np.array_equal(res.clusters, baseline_clusters)
                ),
            }
        )
    return rows


def test_ablation_tbump(run_once, report_sink):
    rows = run_once(run_experiment)
    table = render_table(
        ["T_bump", "clustering peak KiB", "bumped vertices", "clusters identical"],
        [
            (r["t"], f"{r['mem']/1024:.0f}", r["bumped"], r["same_clusters"])
            for r in rows
        ],
        title="Ablation: bump threshold T_bump (weblike, p=96)",
    )
    report_sink("ablation_tbump", table)

    mems = [r["mem"] for r in rows]
    bumps = [r["bumped"] for r in rows]
    # memory grows with T (hash-table capacity), bumps shrink with T
    assert mems == sorted(mems), mems
    assert bumps == sorted(bumps, reverse=True), bumps
    # some hub vertices actually bump at small T on a web graph
    assert bumps[0] > 0
    # the clustering decision is T-invariant (identical rating results)
    assert all(r["same_clusters"] for r in rows)
