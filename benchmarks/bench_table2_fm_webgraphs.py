"""Table II: TeraPart-LP vs TeraPart-FM on the Set B web graphs (k=64).

Paper: FM reduces the edge cut to 0.87x-0.96x of LP's, at the cost of more
time and roughly 2x the memory (gain table + FM working set).

Expected shape here: FM cut <= LP cut on every web graph; FM uses more
memory and more (modeled) time.
"""

import repro
from repro.bench.instances import SET_B
from repro.bench.reporting import render_table
from repro.core import config as C

K = 64
P = 96


def run_experiment():
    rows = []
    from repro.bench.instances import load_instance

    for inst in SET_B:
        graph = load_instance(inst.name)
        lp = repro.partition(graph, K, C.terapart(seed=1, p=P))
        fm = repro.partition(graph, K, C.terapart_fm(seed=1, p=P))
        rows.append(
            {
                "graph": inst.name,
                "lp_cut_pct": 100.0 * lp.cut_fraction,
                "fm_rel": fm.cut / max(1, lp.cut),
                "lp_time": lp.modeled_seconds,
                "fm_time": fm.modeled_seconds,
                "lp_mem": lp.peak_bytes,
                "fm_mem": fm.peak_bytes,
                "lp_balanced": lp.balanced,
                "fm_balanced": fm.balanced,
            }
        )
    return rows


def test_table2_fm_webgraphs(run_once, report_sink):
    rows = run_once(run_experiment)
    table = render_table(
        ["graph", "LP cut %", "FM cut (rel)", "LP mem KiB", "FM mem KiB"],
        [
            (
                r["graph"],
                f"{r['lp_cut_pct']:.2f}%",
                f"{r['fm_rel']:.3f}x",
                f"{r['lp_mem']/1024:.0f}",
                f"{r['fm_mem']/1024:.0f}",
            )
            for r in rows
        ],
        title="Table II: TeraPart-LP vs TeraPart-FM on Set B stand-ins",
    )
    report_sink("table2_fm_webgraphs", table)

    for r in rows:
        assert r["fm_rel"] <= 1.001, r  # FM never worse
        assert r["lp_balanced"] and r["fm_balanced"], r
    # FM improves somewhere (paper: 4-13%)
    assert min(r["fm_rel"] for r in rows) < 0.99
    # FM never reduces the peak, and costs extra memory on the larger
    # graphs (at bench scale the coarsening peak can still dominate the
    # gain table, so equality is legitimate on small instances)
    assert all(r["fm_mem"] >= r["lp_mem"] for r in rows)
    assert any(r["fm_mem"] > r["lp_mem"] for r in rows)
