"""Figure 1: peak-memory waterfall as optimizations are enabled.

Paper: partitioning eu-2015 (80.5G edges, p=96, k=30000) takes 1.35 TiB
with KaMinPar; two-phase LP, graph compression and one-pass contraction
together reduce this ~16x to ~0.1 TiB.

Here: the eu-2015 stand-in at bench scale, k scaled to keep k << n, p=96
virtual threads.  Expected shape: each step reduces peak memory; the
combined reduction is several-fold, with two-phase LP the largest step.
"""

import repro
from repro.bench.instances import load_instance
from repro.bench.reporting import render_waterfall
from repro.core import config as C

LADDER = [
    ("KaMinPar", "kaminpar"),
    ("+ two-phase LP", "kaminpar+2lp"),
    ("+ compression", "kaminpar+2lp+compress"),
    ("TeraPart (+1-pass)", "terapart"),
]
K = 64
P = 96


def run_waterfall():
    graph = load_instance("eu-2015*")
    steps = []
    for label, preset in LADDER:
        # peaks come from the obs metrics registry (the same snapshot
        # `--metrics-json` writes), not from re-measuring the tracker
        cfg = C.preset(preset, seed=1, p=P).with_(obs=C.ObsConfig(enabled=True))
        result = repro.partition(graph, K, cfg)
        steps.append((label, result.obs["peak_bytes"] / 1024.0))
    return steps


def test_fig1_memory_waterfall(run_once, report_sink):
    steps = run_once(run_waterfall)
    report_sink("fig1_memory_waterfall", render_waterfall(steps))
    peaks = [v for _, v in steps]
    # every optimization is monotone non-increasing (small tolerance)
    for a, b in zip(peaks, peaks[1:]):
        assert b <= a * 1.05, steps
    # combined reduction is several-fold (paper: 16x at full scale)
    assert peaks[-1] < peaks[0] / 2.5, steps
