"""Figure 8 (right): weak scaling of xTeraPart up to 128 compute nodes.

Paper: with the per-node graph share held constant, xTeraPart partitions
rgg2D / rhg graphs up to 2^44 edges on 128 nodes in just under 10 minutes;
the time curve rises only mildly with the node count (good weak scaling).

Here: per-rank share fixed at ~1500 vertices; ranks in {2, 4, 8, 16}
(scaled from {8..128}); modeled time from the alpha-beta communication
model + per-rank compute.  Expected shape: modeled time grows by far less
than the 8x growth in total work; per-rank peak memory stays roughly flat.
"""

from repro.bench.reporting import render_series, render_table
from repro.dist import dpartition
from repro.dist.dpartitioner import DistConfig
from repro.graph import generators as gen

PER_RANK_N = 1500
RANK_COUNTS = [2, 4, 8, 16]
K = 16


def run_experiment():
    out = {}
    for family in ("rgg2D", "rhg"):
        series = []
        for ranks in RANK_COUNTS:
            n = PER_RANK_N * ranks
            graph = (
                gen.rgg2d(n, 12.0, seed=9)
                if family == "rgg2D"
                else gen.rhg(n, 12.0, gamma=3.0, seed=9)
            )
            r = dpartition(
                graph, K, ranks, compressed=True, config=DistConfig(seed=1)
            )
            series.append(
                {
                    "ranks": ranks,
                    "m": graph.m,
                    "modeled": r.modeled_seconds,
                    "peak_per_rank": r.max_rank_peak_bytes,
                    "cut_pct": 100 * r.cut_fraction,
                    "balanced": r.balanced,
                }
            )
        out[family] = series
    return out


def test_fig8_weak_scaling(run_once, report_sink):
    out = run_once(run_experiment)
    blocks = []
    for family, series in out.items():
        rows = [
            (
                s["ranks"],
                s["m"],
                f"{s['modeled']*1e3:.2f}ms",
                f"{s['peak_per_rank']/1024:.0f}K",
                f"{s['cut_pct']:.2f}%",
            )
            for s in series
        ]
        blocks.append(
            render_table(
                ["ranks", "m", "modeled time", "peak/rank", "cut %"],
                rows,
                title=f"weak scaling: {family} (n per rank = {PER_RANK_N})",
            )
        )
        blocks.append(
            render_series(
                f"{family} modeled seconds",
                [s["ranks"] for s in series],
                [s["modeled"] for s in series],
            )
        )
    report_sink("fig8_weak_scaling", "\n\n".join(blocks))

    for family, series in out.items():
        assert all(s["balanced"] for s in series), family
        # weak scaling: total work grows 8x; modeled time grows far less
        # (the residual growth is the log-depth collective latency term)
        t_first, t_last = series[0]["modeled"], series[-1]["modeled"]
        assert t_last < 6.0 * t_first, (family, t_first, t_last)
        # the sharper claim: time *per edge* falls or stays flat
        eff_first = t_first / max(1, series[0]["m"])
        eff_last = t_last / max(1, series[-1]["m"])
        assert eff_last <= eff_first, (family, eff_first, eff_last)
        # per-rank memory roughly flat (within 2.5x across an 8x scale-up)
        p_first = series[0]["peak_per_rank"]
        p_last = series[-1]["peak_per_rank"]
        assert p_last < 2.5 * p_first, (family, p_first, p_last)
