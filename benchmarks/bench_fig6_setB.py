"""Figure 6: huge web graphs (Set B) -- relative running time (left),
relative peak memory at large k (middle), and compression ratios with gap
encoding alone vs gap + interval encoding (right).

Paper: on gsh-2015 / clueweb12 / uk-2014 / eu-2015, KaMinPar uses
12.9-15.7x more memory than TeraPart; compression ratios 5-11x with
interval encoding but only 2.7-3.4x with gap encoding alone; two-phase LP
is the most impactful runtime optimization.

Here: weblike stand-ins (Table I's degree spread); k scaled to n.
Expected shape: large memory ratios (>> Set A's), interval encoding
clearly beats gap-only on every web graph.
"""

import repro
from repro.bench.instances import SET_B, load_instance
from repro.bench.harness import aggregate, relative_to, run_matrix
from repro.bench.reporting import render_table
from repro.core import config as C
from repro.graph.compressed import compress_graph

K = 64  # scaled stand-in for the paper's k=30000 at n ~ 1e9
P = 96
LADDER = ["kaminpar", "kaminpar+2lp", "kaminpar+2lp+compress", "terapart"]


def run_experiment():
    configs = [C.preset(nm, p=P) for nm in LADDER]
    records = run_matrix(configs, SET_B, [K], [1])
    ratios = {}
    for inst in SET_B:
        g = load_instance(inst.name)
        with_iv = compress_graph(g).stats.ratio
        gap_only = compress_graph(g, enable_intervals=False).stats.ratio
        ratios[inst.name] = (gap_only, with_iv)
    return records, ratios


def test_fig6_setB(run_once, report_sink):
    records, ratios = run_once(run_experiment)
    mem = aggregate(records, "peak_bytes")
    tim = aggregate(records, "modeled_seconds")
    rel_mem = relative_to(mem, "kaminpar")
    rel_tim = relative_to(tim, "kaminpar")

    rows = [
        (alg, f"{rel_tim[alg]:.3f}", f"{rel_mem[alg]:.3f}") for alg in LADDER
    ]
    table = render_table(
        ["algorithm", "rel time", "rel peak mem"],
        rows,
        title=f"Figure 6 (left/middle): Set B, k={K}, relative to KaMinPar",
    )
    ratio_rows = [
        (name, f"{gap:.2f}x", f"{iv:.2f}x") for name, (gap, iv) in ratios.items()
    ]
    ratio_table = render_table(
        ["graph", "gap only", "gap + interval"],
        ratio_rows,
        title="Figure 6 (right): compression ratios",
    )
    report_sink("fig6_setB", table + "\n\n" + ratio_table)

    # memory ratio on web graphs larger than the Set A average (paper:
    # 12.9-15.7x at full scale; several-fold here)
    assert rel_mem["terapart"] < 0.45, rel_mem
    # ladder monotone
    lm = [rel_mem[a] for a in LADDER]
    for a, b in zip(lm, lm[1:]):
        assert b <= a * 1.05
    # interval encoding strictly helps on every web graph
    for name, (gap, iv) in ratios.items():
        assert iv > gap, (name, gap, iv)
    # compression is substantial (paper: 5-11x; scaled graphs give less
    # absolute ratio but still > 3x)
    assert min(iv for _, iv in ratios.values()) > 3.0
