"""Shared benchmark fixtures and report sink.

Every bench target regenerates one table or figure of the paper: it runs
the experiment once inside ``benchmark.pedantic`` (so ``pytest benchmarks/
--benchmark-only`` times the regeneration), prints the table/series the
paper reports, asserts the paper's qualitative *shape* (who wins, rough
factors), and persists the rendered output under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

# Point the regression observatory's default run database at the repo-root
# trajectory file: every figure script's run_matrix() appends its records
# there unless the caller overrides $REPRO_RUNDB (see repro.obs.regress).
os.environ.setdefault(
    "REPRO_RUNDB", str(Path(__file__).parent.parent / "BENCH_runs.jsonl")
)


@pytest.fixture(scope="session")
def report_sink():
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return save


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
