"""Figure 9 / Table I: basic properties of the benchmark instances.

Regenerates the n / m / average degree / max degree table for Set A and
Set B stand-ins, plus the locality metrics that explain the per-family
compression behaviour (run fraction inside consecutive-ID intervals).
"""

from repro.bench.instances import SET_A, SET_B
from repro.bench.reporting import render_table
from repro.graph.stats import compute_stats


def run_experiment():
    rows = []
    from repro.bench.instances import load_instance

    for inst in (*SET_A, *SET_B):
        st = compute_stats(load_instance(inst.name))
        rows.append(
            (
                inst.name,
                st.n,
                st.m,
                f"{st.avg_degree:.1f}",
                st.max_degree,
                f"{st.interval_edge_fraction:.1%}",
                "w" if st.weighted else "",
            )
        )
    return rows


def test_fig9_setA_props(run_once, report_sink):
    rows = run_once(run_experiment)
    table = render_table(
        ["graph", "n", "m", "avg deg", "max deg", "run edges", "weighted"],
        rows,
        title="Figure 9 / Table I: instance properties (Set A + Set B)",
    )
    report_sink("fig9_setA_props", table)

    by_name = {r[0]: r for r in rows}
    # the weblike Set B stand-ins have hub-dominated max degrees
    for name in ("eu-2015*", "hyperlink*"):
        assert by_name[name][4] > 20 * float(by_name[name][3]), by_name[name]
    # web graphs carry consecutive-ID runs; kmer graphs have none to speak of
    web_runs = float(by_name["web-small"][5].rstrip("%"))
    kmer_runs = float(by_name["kmer-A2a"][5].rstrip("%"))
    assert web_runs > 10.0
    assert kmer_runs < 5.0
    # text-compression stand-ins are the weighted class
    assert by_name["text-sources"][6] == "w"
