"""Figure 4: Benchmark Set A -- relative running time (left), relative peak
memory (middle), and the solution-quality performance profile (right), with
Mt-Metis as the external reference point.

Paper claims reproduced in shape:
* enabling (i) two-phase LP, (ii) compression, (iii) one-pass contraction
  never hurts quality (profiles overlap) and cuts peak memory ~2x on
  average (more on larger graphs);
* two-phase LP *speeds up* the partitioner, compression costs a few
  percent of time, one-pass contraction is roughly time-neutral
  (modeled time; wall-clock in pure Python overstates decode cost);
* Mt-Metis uses multiples of TeraPart's memory, is slower, and violates
  the balance constraint on many instances while TeraPart never does.
"""

import numpy as np

from repro.baselines import mtmetis_partition
from repro.bench.harness import (
    RunRecord,
    aggregate,
    geometric_mean,
    relative_to,
    run_matrix,
)
from repro.bench.instances import SET_A
from repro.bench.profiles import performance_profile, profile_summary, render_profile
from repro.bench.reporting import render_table
from repro.core import config as C

KS = [8, 64]
SEEDS = [1]
P = 96
LADDER = ["kaminpar", "kaminpar+2lp", "kaminpar+2lp+compress", "terapart"]


def _mtmetis_runner(cfg, inst, k, seed) -> RunRecord:
    from repro.bench.instances import load_instance

    graph = load_instance(inst.name)
    r = mtmetis_partition(graph, k, seed=seed, p=P)
    return RunRecord(
        algorithm="mt-metis",
        instance=inst.name,
        k=k,
        seed=seed,
        cut=r.cut,
        balanced=r.balanced,
        imbalance=r.imbalance,
        wall_seconds=r.wall_seconds,
        modeled_seconds=r.modeled_seconds,
        peak_bytes=r.peak_bytes,
    )


def run_experiment():
    configs = [C.preset(nm, p=P) for nm in LADDER]
    records = run_matrix(configs, SET_A, KS, SEEDS)
    records += run_matrix([C.preset("terapart", p=P)], SET_A, KS, SEEDS,
                          runner=_mtmetis_runner)
    return records


def test_fig4_setA(run_once, report_sink):
    records = run_once(run_experiment)

    mem = aggregate(records, "peak_bytes")
    tim = aggregate(records, "modeled_seconds")
    cut = aggregate(records, "cut")
    rel_mem = relative_to(mem, "kaminpar")
    rel_tim = relative_to(tim, "kaminpar")

    rows = [
        (alg, f"{rel_tim.get(alg, float('nan')):.3f}", f"{rel_mem.get(alg, float('nan')):.3f}")
        for alg in LADDER + ["mt-metis"]
    ]
    table = render_table(
        ["algorithm", "rel time (geo)", "rel peak mem (geo)"],
        rows,
        title="Figure 4 (left/middle): relative to KaMinPar over Set A",
    )

    # performance profile over cuts
    cuts_by_alg: dict[str, dict[str, float]] = {}
    for (alg, inst, k), v in cut.items():
        cuts_by_alg.setdefault(alg, {})[f"{inst}/k{k}"] = v
    taus, profiles = performance_profile(cuts_by_alg)
    prof_txt = render_profile(taus, profiles)
    summary = profile_summary(taus, profiles)

    balanced_frac = {}
    for alg in LADDER + ["mt-metis"]:
        rs = [r for r in records if r.algorithm == alg]
        balanced_frac[alg] = np.mean([r.balanced for r in rs])
    bal_table = render_table(
        ["algorithm", "balanced fraction"],
        [(a, f"{v:.2f}") for a, v in balanced_frac.items()],
    )
    report_sink(
        "fig4_setA",
        table + "\n\n" + prof_txt + "\n\n" + bal_table,
    )

    # --- shape assertions (paper claims) --- #
    # memory ladder is monotone and TeraPart saves substantially
    assert rel_mem["terapart"] < 0.7
    assert rel_mem["kaminpar+2lp"] <= 1.02
    # two-phase LP does not slow down; compression costs little (modeled)
    assert rel_tim["kaminpar+2lp"] <= 1.02
    assert rel_tim["terapart"] <= 1.25
    # Mt-Metis is slower (paper: 3.9x) and uses more memory than TeraPart
    # (paper: 4.4x); at bench scale its footprint relative to the
    # unoptimized KaMinPar depends on constants, so assert against TeraPart
    assert rel_tim["mt-metis"] > 1.5
    assert rel_mem["mt-metis"] > 2.0 * rel_mem["terapart"]
    # quality: KaMinPar and TeraPart profiles overlap (avg cuts within 5%)
    auc_k = summary["kaminpar"]["auc"]
    auc_t = summary["terapart"]["auc"]
    assert abs(auc_k - auc_t) < 0.08, (auc_k, auc_t)
    # TeraPart always balanced; Mt-Metis frequently not
    assert balanced_frac["terapart"] == 1.0
    assert balanced_frac["mt-metis"] < 1.0
