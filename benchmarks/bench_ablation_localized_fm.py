"""Ablation: global k-way FM vs localized multi-search FM ([4], [15]).

The paper's optional FM refinement is the *localized* parallel variant;
this repo implements both a global single-queue FM and the localized
multi-search scheme.  Expected shape: comparable cut improvements over
LP-only refinement from both, with localized searches doing bounded work
per seed (the property that makes the real algorithm parallelizable).
"""

import repro
from repro.bench.reporting import render_table
from repro.core import config as C
from repro.graph import generators as gen

K = 16
INSTANCES = {
    "rgg2d": lambda: gen.rgg2d(3000, 8.0, seed=31),
    "weblike": lambda: gen.weblike(3000, 14.0, seed=32),
    "rhg": lambda: gen.rhg(3000, 8.0, seed=33),
}


def run_experiment():
    rows = []
    for name, maker in INSTANCES.items():
        g = maker()
        lp = repro.partition(g, K, C.terapart(seed=1))
        glob = repro.partition(g, K, C.terapart_fm(seed=1))
        loc = repro.partition(
            g,
            K,
            C.terapart_fm(seed=1).with_(
                name="terapart-fm-localized",
                fm=C.FMConfig(localized=True, max_region=64),
            ),
        )
        rows.append(
            {
                "graph": name,
                "lp": lp.cut,
                "global": glob.cut,
                "localized": loc.cut,
                "glob_balanced": glob.balanced,
                "loc_balanced": loc.balanced,
            }
        )
    return rows


def test_ablation_localized_fm(run_once, report_sink):
    rows = run_once(run_experiment)
    table = render_table(
        ["graph", "LP only", "global FM", "localized FM"],
        [(r["graph"], r["lp"], r["global"], r["localized"]) for r in rows],
        title="Ablation: global vs localized FM (cut, k=16)",
    )
    report_sink("ablation_localized_fm", table)

    for r in rows:
        assert r["glob_balanced"] and r["loc_balanced"], r
        # both FM flavors at least match LP-only
        assert r["global"] <= r["lp"] * 1.001, r
        assert r["localized"] <= r["lp"] * 1.001, r
        # and land near each other (different local optima, same ballpark)
        hi = max(r["global"], r["localized"])
        lo = max(1, min(r["global"], r["localized"]))
        assert hi / lo < 1.25, r
