"""Section VI (Methodology): single-pass parallel compression I/O.

Paper, on eu-2015 from a RAID-0 of NVMe SSDs: sequential load takes 572 s
plain vs 2905 s with on-the-fly compression; with 96 cores both take
~178 s -- parallel compression hides entirely behind the disk.

This bench runs the *real* streaming pipeline on a binary file (correctness
+ measured packet behaviour) and evaluates the I/O time model at 1 and 96
cores (the paper's headline numbers are bandwidth arithmetic; the model
reproduces them directly).
"""

import numpy as np

from repro.bench.instances import load_instance
from repro.bench.reporting import render_table
from repro.graph.compressed import compress_graph
from repro.graph.compression import compress_graph_parallel, io_time_model
from repro.graph.io import stream_compressed, write_binary
from repro.memory import MemoryTracker
from repro.parallel import ParallelRuntime

EU2015_BYTES = 80.5e9 * 2 * 8  # the real graph's CSR edge bytes


def run_experiment(tmpdir):
    graph = load_instance("eu-2015*")
    path = tmpdir / "eu2015.bin"
    write_binary(graph, path)
    cg_stream = stream_compressed(path, packet_edges=4096)
    cg_mem = compress_graph(graph)
    tracker = MemoryTracker()
    rt = ParallelRuntime(8, chunk_size=256)
    cg_par, traces = compress_graph_parallel(graph, rt, tracker=tracker)
    model = {
        (p, compress): io_time_model(EU2015_BYTES, p, compress=compress)
        for p in (1, 96)
        for compress in (False, True)
    }
    return cg_stream, cg_mem, cg_par, traces, tracker, model


def test_io_compression(run_once, report_sink, tmp_path):
    cg_stream, cg_mem, cg_par, traces, tracker, model = run_once(
        run_experiment, tmp_path
    )
    rows = [
        ("1 core, plain", f"{model[(1, False)]:.0f} s"),
        ("1 core, compressing", f"{model[(1, True)]:.0f} s"),
        ("96 cores, plain", f"{model[(96, False)]:.0f} s"),
        ("96 cores, compressing", f"{model[(96, True)]:.0f} s"),
    ]
    table = render_table(
        ["configuration", "modeled load time (eu-2015)"],
        rows,
        title="Section VI: I/O with on-the-fly compression "
        f"({len(traces)} packets streamed at bench scale)",
    )
    report_sink("io_compression", table)

    # streaming from disk and in-memory compression are byte-identical
    assert cg_stream.data == cg_mem.data == cg_par.data
    assert np.array_equal(cg_stream.offsets, cg_mem.offsets)
    # the paper's ratios: sequential compression ~5x slower than plain;
    # parallel compression within a few percent of plain I/O
    assert model[(1, True)] > 3 * model[(1, False)]
    assert model[(96, True)] < 1.05 * model[(96, False)]
    # the overcommit pipeline never held more than a sliver of the bound
    assert tracker.peak_bytes < cg_par.nbytes * 3
