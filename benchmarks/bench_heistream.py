"""Section VII: HeiStream (buffered streaming) vs TeraPart.

Paper: on the generated tera-edge graphs at k=30000, HeiStream cuts 3.1x
(rgg2D) to 14.8x (rhg) more edges than TeraPart.  Streaming's single pass
cannot revise early assignments, and power-law (rhg) hubs make those early
mistakes expensive.

Here: scaled rgg2D/rhg; expected shape: HeiStream clearly worse on both
families while using far less memory.  The paper's rgg-vs-rhg *asymmetry*
(3.1x vs 14.8x) is driven by hub neighborhoods that span billions of
vertices -- it does not emerge at bench scale (see EXPERIMENTS.md), so the
per-family ratios are reported but only their common direction is asserted.
"""

import repro
from repro.baselines import heistream_partition
from repro.bench.reporting import render_table
from repro.core import config as C
from repro.graph import generators as gen

K = 64
N = 8000


def run_experiment():
    rows = []
    for family, maker in (
        ("rgg2D", lambda: gen.rgg2d(N, 16.0, seed=5)),
        ("rhg", lambda: gen.rhg(N, 16.0, gamma=2.8, seed=5)),
    ):
        graph = maker()
        tp = repro.partition(graph, K, C.terapart(seed=1, p=96))
        hs = heistream_partition(graph, K, seed=1, buffer_size=256)
        rows.append(
            {
                "family": family,
                "tp_cut": tp.cut,
                "hs_cut": hs.cut,
                "ratio": hs.cut / max(1, tp.cut),
                "hs_mem": hs.peak_bytes,
                "tp_mem": tp.peak_bytes,
                "hs_balanced": hs.balanced,
            }
        )
    return rows


def test_heistream(run_once, report_sink):
    rows = run_once(run_experiment)
    table = render_table(
        ["family", "TeraPart cut", "HeiStream cut", "ratio", "HS mem KiB"],
        [
            (
                r["family"],
                r["tp_cut"],
                r["hs_cut"],
                f"{r['ratio']:.2f}x",
                f"{r['hs_mem']/1024:.0f}",
            )
            for r in rows
        ],
        title=f"Section VII: HeiStream vs TeraPart (k={K})",
    )
    report_sink("heistream", table)

    rgg, rhg = rows
    # streaming is substantially worse on both families (paper: 3.1x/14.8x
    # at k=30000 and tera-scale; smaller but clear at bench scale)
    assert rgg["ratio"] > 1.5, rgg
    assert rhg["ratio"] > 1.5, rhg
    # its selling point holds: much smaller memory footprint
    assert rgg["hs_mem"] < rgg["tp_mem"]
