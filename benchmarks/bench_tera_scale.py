"""Section VI-A3: "Scaling to a Trillion Edges" -- the headline experiment.

Paper: synthetic rgg2D / rhg graphs with 8.59G vertices and ~1.0-1.1T
undirected edges; compression shrinks the CSR from 16.1 / 14.8 TiB to
1194 / 608 GiB (ratios 14.2x / 26.3x); partitioning into k=30000 blocks
takes 663 s / 467 s cutting 1.48% / 0.45% of edges; auxiliary structures
take only ~300 GiB, i.e. a small multiple of the compressed graph.

Here: the largest rgg2D / rhg instances the pure-Python stack handles in
seconds (the substitution is scale, not structure).  Expected shape:
* rhg compresses better than rgg2D (locality from the GIRG positions plus
  power-law hubs),
* rhg cuts a smaller fraction of its edges than rgg2D,
* auxiliary memory is a modest multiple of the compressed graph size, so
  total peak is far below the uncompressed CSR footprint.
"""

import repro
from repro.bench.reporting import render_table
from repro.core import config as C
from repro.graph import generators as gen
from repro.graph.compressed import compress_graph

N = 20_000
DEG = 32  # scaled from the paper's d=256
K = 64  # scaled from k=30000
P = 96


def run_experiment():
    rows = []
    for family, maker in (
        ("rgg2D", lambda: gen.rgg2d(N, DEG, seed=3)),
        ("rhg", lambda: gen.rhg(N, DEG, gamma=3.0, seed=3)),
    ):
        graph = maker()
        cg = compress_graph(graph)
        result = repro.partition(graph, K, C.terapart(seed=1, p=P))
        rows.append(
            {
                "family": family,
                "n": graph.n,
                "m": graph.m,
                "csr_bytes": graph.nbytes,
                "compressed_bytes": cg.nbytes,
                "ratio": cg.stats.ratio,
                "cut_pct": 100 * result.cut_fraction,
                "peak_bytes": result.peak_bytes,
                "balanced": result.balanced,
                "modeled_seconds": result.modeled_seconds,
            }
        )
    return rows


def test_tera_scale(run_once, report_sink):
    rows = run_once(run_experiment)
    table = render_table(
        ["family", "n", "m", "CSR KiB", "compressed KiB", "ratio", "cut %", "peak KiB"],
        [
            (
                r["family"],
                r["n"],
                r["m"],
                f"{r['csr_bytes']/1024:.0f}",
                f"{r['compressed_bytes']/1024:.0f}",
                f"{r['ratio']:.1f}x",
                f"{r['cut_pct']:.2f}%",
                f"{r['peak_bytes']/1024:.0f}",
            )
            for r in rows
        ],
        title=f"Tera-scale experiment (scaled: n={N}, d={DEG}, k={K})",
    )
    report_sink("tera_scale", table)

    rgg, rhg = rows
    assert rgg["balanced"] and rhg["balanced"]
    # compression makes partitioning feasible: peak far below raw CSR
    for r in rows:
        assert r["peak_bytes"] < 0.6 * r["csr_bytes"], r
    # rhg cuts a smaller fraction than rgg2D (0.45% vs 1.48% in the paper)
    assert rhg["cut_pct"] < rgg["cut_pct"]
    # both compress well; auxiliary memory is a small multiple of the
    # compressed graph (paper: ~300 GiB aux vs 608-1194 GiB graph)
    for r in rows:
        assert r["ratio"] > 2.5
        assert r["peak_bytes"] < 6 * r["compressed_bytes"]
