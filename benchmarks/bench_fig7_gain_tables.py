"""Figure 7: FM with No Table / Full Table / sparse gain table -- relative
running time (left), relative peak memory (middle), quality (right).

Paper: the sparse table needs 2.7x less memory than the full O(nk) table on
Set A (5.8x on graphs over 8 GiB) at a ~1.6% time cost; no table at all is
2.7x slower on average (10x+ on a fifth of instances); all three produce
identical-quality cuts.  TeraPart-FM beats TeraPart-LP on ~80% of
instances.

Here: Set A at k in {8, 64, 128} (scaled from the paper's {8..1000}).
"""

import numpy as np

from repro.bench.harness import aggregate, relative_to, run_matrix
from repro.bench.instances import SET_A
from repro.bench.reporting import render_table
from repro.core import config as C

KS = [8, 64, 128]
P = 96
VARIANTS = ["terapart-fm-none", "terapart-fm-full", "terapart-fm"]

# FM in pure Python is the slowest kernel; use a Set A subset covering one
# instance per structural family and two FM rounds to keep the bench fast
# (the truncation is logged in the output rather than hidden)
SUBSET = [
    i
    for i in SET_A
    if i.name
    in ("fem-grid", "rgg2d-small", "rhg-small", "web-small", "kmer-A2a", "text-sources")
]
FM_ROUNDS = 2


def run_experiment():
    configs = [
        C.preset(nm, p=P).with_(
            fm=C.FMConfig(
                gain_table=C.preset(nm, p=P).fm.gain_table, max_rounds=FM_ROUNDS
            )
        )
        for nm in VARIANTS
    ] + [C.preset("terapart", p=P)]
    return run_matrix(configs, SUBSET, KS, [1])


def test_fig7_gain_tables(run_once, report_sink):
    records = run_once(run_experiment)
    mem = aggregate(records, "peak_bytes")
    tim = aggregate(records, "modeled_seconds")
    cut = aggregate(records, "cut")
    rel_mem = relative_to(mem, "terapart-fm")
    rel_tim = relative_to(tim, "terapart-fm")

    rows = [
        (alg, f"{rel_tim[alg]:.3f}", f"{rel_mem[alg]:.3f}")
        for alg in VARIANTS
    ]
    table = render_table(
        ["algorithm", "rel time", "rel peak mem"],
        rows,
        title=f"Figure 7: relative to TeraPart-FM (sparse), Set A subset "
        f"({len(SUBSET)}/{len(SET_A)} instances), k={KS}",
    )

    # quality comparison: FM vs LP and across table kinds
    fm_beats_lp = 0
    pairs = 0
    max_rel_diff = 0.0
    for (alg, inst, k), v in cut.items():
        if alg != "terapart-fm":
            continue
        lp = cut.get(("terapart", inst, k))
        if lp is not None:
            pairs += 1
            if v <= lp:
                fm_beats_lp += 1
        for other in ("terapart-fm-none", "terapart-fm-full"):
            o = cut.get((other, inst, k))
            if o is not None and max(v, o) > 0:
                max_rel_diff = max(max_rel_diff, abs(v - o) / max(v, o))
    quality = (
        f"FM <= LP cut on {fm_beats_lp}/{pairs} instances; "
        f"max cut deviation across gain-table kinds: {max_rel_diff:.2%}"
    )
    report_sink("fig7_gain_tables", table + "\n\n" + quality)

    # full table needs several times the sparse table's memory at k >= 64
    mem_full_k128 = [
        mem[("terapart-fm-full", i.name, 128)] for i in SUBSET
    ]
    mem_sparse_k128 = [
        mem[("terapart-fm", i.name, 128)] for i in SUBSET
    ]
    ratio = np.mean(np.array(mem_full_k128) / np.array(mem_sparse_k128))
    assert ratio > 1.5, ratio
    # identical quality across gain-table kinds (deterministic moves)
    assert max_rel_diff < 0.01
    # no-table is slower (modeled; recompute work)
    assert rel_tim["terapart-fm-none"] > 1.0
    # FM at least matches LP nearly everywhere
    assert fm_beats_lp >= 0.8 * pairs
