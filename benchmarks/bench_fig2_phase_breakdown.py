"""Figure 2: memory consumption per phase and level (webbase2001, k=64).

Paper: the top three peaks all occur on the top-level graph -- (1)
clustering in the coarsening stage (rating maps dominate), (2) FM
refinement (gain table), (3) contraction.  Coarser levels contribute
little.

Here: the webbase2001 stand-in with the *unoptimized* baseline plus FM
with the full gain table (the configuration Figure 2 profiles), p=96.
Expected shape: level-0 clustering is the peak phase; refinement with the
full table and contraction follow; level >= 1 peaks are much smaller.
"""

import repro
from repro.bench.instances import load_instance
from repro.bench.reporting import render_table
from repro.core import config as C
from repro.memory import MemoryTracker
from repro.memory.report import render_phase_breakdown

K = 64
P = 96


def run_breakdown():
    graph = load_instance("webbase2001*")
    tracker = MemoryTracker()
    cfg = C.preset("kaminpar", seed=1, p=P).with_(
        use_fm=True,
        fm=C.FMConfig(gain_table=C.GainTableKind.FULL),
        name="kaminpar-fm-full",
        obs=C.ObsConfig(enabled=True),
    )
    result = repro.partition(graph, K, cfg, tracker=tracker)
    return tracker, result.obs


def test_fig2_phase_breakdown(run_once, report_sink):
    tracker, obs = run_once(run_breakdown)
    text = render_phase_breakdown(tracker, max_depth=3)
    # the per-phase peaks come from the obs registry's waterfall (the same
    # snapshot `--metrics-json` writes); the registry must agree with the
    # live tracker byte-for-byte
    phases = {e["phase"]: e["peak_bytes"] for e in obs["waterfall"]}
    for path, peak in phases.items():
        assert tracker.phase_peak(path) == peak, path
    rows = sorted(phases.items(), key=lambda kv: -kv[1])[:12]
    table = render_table(
        ["phase", "peak bytes"], rows, title="top phase peaks"
    )
    report_sink("fig2_phase_breakdown", text + "\n\n" + table)

    # the peak must occur while working on the top-level graph
    lvl0_cluster = phases["partition/coarsening/coarsening-level0/clustering"]
    assert lvl0_cluster > 0
    # level-0 clustering is within a whisker of the global peak
    assert lvl0_cluster >= 0.6 * tracker.peak_bytes
    # coarse levels contribute much less than level 0
    lvl1 = tracker.phase_peak("partition/coarsening/coarsening-level1/clustering")
    if lvl1:
        assert lvl1 <= lvl0_cluster
