"""Figure 10: per-graph compression ratios across Set A and Set B.

Paper: ratios range from ~1 (kmer graphs: hashed IDs, no locality) through
~3.2 average on Set A, ~5.7 on FEM meshes, up to 5-11 on web crawls;
edge-weight compression helps only the text-compression class (the only
weighted graphs).

This bench regenerates the full per-graph table and doubles as the
interval-encoding ablation: every graph is compressed with and without
interval encoding.
"""

from repro.bench.instances import SET_A, SET_B
from repro.bench.harness import geometric_mean
from repro.bench.reporting import render_table
from repro.graph.compressed import compress_graph


def run_experiment():
    rows = []
    from repro.bench.instances import load_instance

    for inst in (*SET_A, *SET_B):
        g = load_instance(inst.name)
        full = compress_graph(g).stats
        gap_only = compress_graph(g, enable_intervals=False).stats
        rows.append(
            {
                "name": inst.name,
                "ratio": full.ratio,
                "gap_only": gap_only.ratio,
                "bytes_per_edge": len_bytes_per_edge(full, g),
                "weighted": g.has_edge_weights,
            }
        )
    return rows


def len_bytes_per_edge(stats, g) -> float:
    return stats.compressed_bytes / max(1, g.num_directed_edges)


def test_fig10_compression(run_once, report_sink):
    rows = run_once(run_experiment)
    table = render_table(
        ["graph", "ratio", "gap only", "bytes/edge", "weighted"],
        [
            (
                r["name"],
                f"{r['ratio']:.2f}x",
                f"{r['gap_only']:.2f}x",
                f"{r['bytes_per_edge']:.2f}",
                "w" if r["weighted"] else "",
            )
            for r in rows
        ],
        title="Figure 10: compression ratios (gap+interval vs gap only)",
    )
    geo = geometric_mean([r["ratio"] for r in rows])
    report_sink(
        "fig10_compression", table + f"\n\ngeometric mean ratio: {geo:.2f}x"
    )

    by_name = {r["name"]: r for r in rows}
    # family ordering: web graphs compress best, kmer graphs worst
    web = [r["ratio"] for r in rows if r["name"].startswith(("web", "eu", "gsh", "uk", "clue", "hyper"))]
    kmer = [r["ratio"] for r in rows if r["name"].startswith("kmer")]
    assert min(web) > max(kmer), (min(web), max(kmer))
    # the geometric mean is a healthy multiple (paper: 3.2 on Set A)
    assert geo > 2.0
    # interval encoding helps web graphs specifically
    for name in ("eu-2015*", "web-small"):
        assert by_name[name]["ratio"] > by_name[name]["gap_only"]
