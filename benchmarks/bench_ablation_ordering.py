"""Ablation: vertex ordering x compression ratio.

Section III's compression ratios are a function of neighbor-ID locality:
the paper's web graphs ship in crawl order (high locality, 5-11x), its
kmer graphs in hash order (none, ~1x).  This ablation manufactures both
conditions: BFS reordering restores locality to a kmer graph; random
reordering destroys a web graph's.

Expected shape: BFS > natural > random for every family, with the largest
BFS gain on the family that starts with the least locality (kmer).
"""

from repro.bench.reporting import render_table
from repro.graph import generators as gen
from repro.graph.compressed import compress_graph
from repro.graph.ordering import bfs_order, random_order, relabel

FAMILIES = {
    "weblike": lambda: gen.weblike(4000, 16.0, seed=21),
    "rgg2d": lambda: gen.rgg2d(4000, 8.0, seed=22),
    "kmer": lambda: gen.kmer(4000, 4, seed=23),
}


def run_experiment():
    rows = []
    for name, maker in FAMILIES.items():
        g = maker()
        natural = compress_graph(g).stats.ratio
        bfs = compress_graph(relabel(g, bfs_order(g, seed=1))).stats.ratio
        rand = compress_graph(relabel(g, random_order(g, seed=1))).stats.ratio
        rows.append(
            {"family": name, "natural": natural, "bfs": bfs, "random": rand}
        )
    return rows


def test_ablation_ordering(run_once, report_sink):
    rows = run_once(run_experiment)
    table = render_table(
        ["family", "natural order", "BFS order", "random order"],
        [
            (
                r["family"],
                f"{r['natural']:.2f}x",
                f"{r['bfs']:.2f}x",
                f"{r['random']:.2f}x",
            )
            for r in rows
        ],
        title="Ablation: vertex ordering vs compression ratio",
    )
    report_sink("ablation_ordering", table)

    for r in rows:
        # BFS always at least matches the random baseline, random never wins
        assert r["bfs"] > r["random"], r
        assert r["natural"] >= r["random"] * 0.95, r
    by = {r["family"]: r for r in rows}
    # restoring locality helps the hash-ordered family most
    kmer_gain = by["kmer"]["bfs"] / by["kmer"]["natural"]
    web_gain = by["weblike"]["bfs"] / by["weblike"]["natural"]
    assert kmer_gain > web_gain, (kmer_gain, web_gain)
