"""Ablation: deep multilevel vs classic recursive-bisection multilevel.

KaMinPar's deep scheme [3] exists to make work independent of k: classic
multilevel must stop coarsening at O(k) vertices and pay a full k-way
initial partitioning there, so its cost grows with k; deep multilevel
coarsens to constant size and splits blocks during uncoarsening.

Expected shape: comparable cuts at small k; at large k deep is
substantially faster (wall-clock -- both schemes run the same interpreter)
while staying balanced.
"""

import time

import repro
from repro.bench.reporting import render_table
from repro.core import config as C
from repro.graph import generators as gen

KS = [8, 32, 128]


def run_experiment():
    g = gen.rgg2d(5000, 8.0, seed=12)
    rows = []
    for k in KS:
        t0 = time.perf_counter()
        deep = repro.partition(g, k, C.preset("terapart-deep", seed=1))
        t_deep = time.perf_counter() - t0
        t0 = time.perf_counter()
        rec = repro.partition(g, k, C.terapart(seed=1))
        t_rec = time.perf_counter() - t0
        rows.append(
            {
                "k": k,
                "deep_cut": deep.cut,
                "rec_cut": rec.cut,
                "deep_s": t_deep,
                "rec_s": t_rec,
                "deep_balanced": deep.balanced,
                "rec_balanced": rec.balanced,
                "deep_blocks": deep.pgraph.nonempty_blocks(),
            }
        )
    return rows


def test_ablation_deep(run_once, report_sink):
    rows = run_once(run_experiment)
    table = render_table(
        ["k", "deep cut", "recursive cut", "deep s", "recursive s"],
        [
            (
                r["k"],
                r["deep_cut"],
                r["rec_cut"],
                f"{r['deep_s']:.2f}",
                f"{r['rec_s']:.2f}",
            )
            for r in rows
        ],
        title="Ablation: deep multilevel vs recursive bisection (rgg2D)",
    )
    report_sink("ablation_deep", table)

    for r in rows:
        assert r["deep_balanced"] and r["rec_balanced"], r
        assert r["deep_blocks"] == r["k"], r
        # quality comparable (deep within 60% of recursive at this scale)
        assert r["deep_cut"] < 1.6 * r["rec_cut"], r
    # the point of the scheme: at large k, deep is clearly faster
    large = rows[-1]
    assert large["deep_s"] < 0.75 * large["rec_s"], large
    # and the speed advantage grows with k
    ratios = [r["deep_s"] / r["rec_s"] for r in rows]
    assert ratios[-1] < ratios[0], ratios
