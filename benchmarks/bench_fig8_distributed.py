"""Figure 8 (left/middle) + Table III: distributed comparison on growing
rgg2D / rhg graphs with the node count fixed (paper: 8 nodes x 256 GiB).

Paper claims (shapes reproduced here):
* xTeraPart handles graphs 8x larger than dKaMinPar (uncompressed) and
  64x larger than ParMETIS / XtraPuLP before hitting the per-node memory
  budget -- the baselines OOM first;
* dKaMinPar needs 4.5-4.8x more per-rank memory than xTeraPart;
* cuts (Table III): ParMETIS within ~15% of xTeraPart (both multilevel);
  XtraPuLP 5.56x-68x worse, worst on rhg; XtraPuLP also imbalanced on rgg.
"""

import numpy as np

from repro.baselines import parmetis_partition, xtrapulp_partition
from repro.bench.reporting import render_table
from repro.dist import dpartition
from repro.dist.dpartitioner import DistConfig
from repro.graph import generators as gen

RANKS = 8
K = 16
SIZES = [1500, 3000, 6000, 12000]  # growing m at fixed node count
# per-rank budget scaled so the largest size only fits compressed
BUDGET = 400_000  # bytes


def _make(family: str, n: int):
    if family == "rgg2D":
        return gen.rgg2d(n, 12.0, seed=7)
    return gen.rhg(n, 12.0, gamma=3.0, seed=7)


def run_experiment():
    rows = []
    for family in ("rgg2D", "rhg"):
        for n in SIZES:
            graph = _make(family, n)
            cfg = DistConfig(seed=1, rank_memory_budget=BUDGET)
            xt = dpartition(graph, K, RANKS, compressed=True, config=cfg)
            dk = dpartition(graph, K, RANKS, compressed=False, config=cfg)
            pm = parmetis_partition(
                graph, K, RANKS, seed=1, rank_memory_budget=BUDGET
            )
            xp = xtrapulp_partition(graph, K, seed=1)
            rows.append(
                {
                    "family": family,
                    "n": n,
                    "m": graph.m,
                    "xt_cut_pct": 100 * xt.cut_fraction,
                    "xt_peak": xt.max_rank_peak_bytes,
                    "xt_oom": xt.oom,
                    "dk_peak": dk.max_rank_peak_bytes,
                    "dk_oom": dk.oom,
                    "pm_rel": pm.cut / max(1, xt.cut),
                    "pm_oom": pm.oom,
                    "xp_rel": xp.cut / max(1, xt.cut),
                    "xp_balanced": xp.balanced,
                    "xt_balanced": xt.balanced,
                }
            )
    return rows


def test_fig8_distributed(run_once, report_sink):
    rows = run_once(run_experiment)

    def mark(rel, oom):
        return "OOM" if oom else f"{rel:.2f}x"

    table = render_table(
        [
            "family", "m", "xTP cut%", "xTP peak/rank", "dKMP peak/rank",
            "ParMETIS cut", "XtraPuLP cut", "xTP OOM", "dKMP OOM", "PM OOM",
        ],
        [
            (
                r["family"],
                r["m"],
                f"{r['xt_cut_pct']:.2f}%",
                f"{r['xt_peak']/1024:.0f}K",
                f"{r['dk_peak']/1024:.0f}K",
                mark(r["pm_rel"], r["pm_oom"]),
                f"{r['xp_rel']:.2f}x" + ("" if r["xp_balanced"] else "*"),
                r["xt_oom"],
                r["dk_oom"],
                r["pm_oom"],
            )
            for r in rows
        ],
        title=f"Table III / Fig. 8: {RANKS} ranks, per-rank budget "
        f"{BUDGET//1024} KiB (scaled from 256 GiB)",
    )
    report_sink("fig8_distributed_table3", table)

    # compression reduces per-rank memory on every size
    for r in rows:
        assert r["xt_peak"] < r["dk_peak"], r
    # feasibility ordering at the largest size: xTeraPart fits where the
    # uncompressed variants exceed the budget
    for family in ("rgg2D", "rhg"):
        largest = [r for r in rows if r["family"] == family][-1]
        assert not largest["xt_oom"], largest
        assert largest["dk_oom"] or largest["pm_oom"], largest
        assert largest["pm_oom"], largest
    # cut quality: ParMETIS competitive where it finishes, XtraPuLP far off
    finished_pm = [r["pm_rel"] for r in rows if not r["pm_oom"]]
    assert finished_pm and max(finished_pm) < 1.8
    # the non-multilevel gap grows with instance size (paper: 5.6x-68x at
    # 2^32-2^35 edges); clearly present at every size, large at the largest
    xp_rels = [r["xp_rel"] for r in rows]
    assert min(xp_rels) > 1.5
    for family in ("rgg2D", "rhg"):
        largest = [r for r in rows if r["family"] == family][-1]
        assert largest["xp_rel"] > 3.0, largest
    # XtraPuLP is worst on rhg (the paper's 48-68x pattern)
    rhg_xp = np.mean([r["xp_rel"] for r in rows if r["family"] == "rhg"])
    rgg_xp = np.mean([r["xp_rel"] for r in rows if r["family"] == "rgg2D"])
    assert rhg_xp > rgg_xp * 0.9
