"""Figure 5: self-relative speedups for p in {12, 24, 48, 96}.

Paper: harmonic-mean speedups 8.7 / 13.0 / 16.5 / 17.3; on instances with
>= 64 s sequential time, 10.2 / 17.0 / 24.7 / 29.8 (sequential initial
partitioning amortises on larger graphs; memory bandwidth caps the rest).

Here: each instance is partitioned once to collect per-phase work / span /
bytes-moved statistics; the machine cost model converts them into modeled
times at each core count (DESIGN.md section 2 explains the substitution).
Expected shape: speedups grow with p but saturate well below p due to the
bandwidth cap; larger instances scale better.

Ablation (T_bump): the same runs at a tiny forced T_bump shift work into
the atomic-heavy second phase and must not *improve* modeled speed.
"""

import numpy as np

import repro
from repro.bench.harness import harmonic_mean
from repro.bench.instances import SET_A
from repro.bench.reporting import render_series, render_table
from repro.core import config as C
from repro.parallel.cost_model import CostModel

PS = (12, 24, 48, 96)
K = 64


def run_experiment():
    model = CostModel()
    per_instance = {}
    from repro.bench.instances import load_instance

    for inst in SET_A:
        graph = load_instance(inst.name)
        result = repro.partition(graph, K, C.terapart(seed=1, p=96))
        phases = result.phase_stats
        t1 = model.total_time(phases, 1)
        speedups = {p: model.speedup(phases, p) for p in PS}
        per_instance[inst.name] = (t1, speedups, graph.m)
    return per_instance


def test_fig5_speedups(run_once, report_sink):
    per_instance = run_once(run_experiment)

    rows = []
    for name, (t1, sp, m) in sorted(per_instance.items()):
        rows.append((name, f"{t1*1000:.1f}ms") + tuple(f"{sp[p]:.1f}" for p in PS))
    table = render_table(
        ["instance", "T(1) modeled"] + [f"p={p}" for p in PS],
        rows,
        title="Figure 5: modeled self-relative speedups (k=64)",
    )

    overall = {
        p: harmonic_mean([sp[p] for _, sp, _ in per_instance.values()])
        for p in PS
    }
    median_t1 = float(np.median([t1 for t1, _, _ in per_instance.values()]))
    large = {
        p: harmonic_mean(
            [sp[p] for t1, sp, _ in per_instance.values() if t1 >= median_t1]
        )
        for p in PS
    }
    series = (
        render_series("harmonic mean (all)", PS, [overall[p] for p in PS], "x")
        + "\n"
        + render_series("harmonic mean (larger half)", PS, [large[p] for p in PS], "x")
    )
    report_sink("fig5_speedups", table + "\n\n" + series)

    # monotone in p
    vals = [overall[p] for p in PS]
    assert vals == sorted(vals)
    # bandwidth-limited: speedup at 96 cores clearly below linear
    assert overall[96] < 60
    assert overall[96] > overall[12]
    # larger instances scale at least as well (paper's Fig. 5 pattern)
    assert large[96] >= overall[96] * 0.95
