"""Table IV: TeraPart vs the semi-external memory algorithm (SEM, [35]).

Paper (k=16, eps=3%, four web graphs): TeraPart cuts fewer edges on every
graph, runs ~7-11x faster, and uses somewhat less memory -- SEM's virtue is
its O(n) residency, which TeraPart's compression matches while keeping full
in-memory speed.

Here: weblike stand-ins for arabic-2005 / uk-2002 / sk-2005 / uk-2007.
Time is compared with the modeled clocks (SEM re-streams every pass from
SSD -- the mechanism of its slowdown; wall-clock in one address space
cannot show it).
"""

import repro
from repro.baselines import sem_partition
from repro.bench.instances import SEM_GRAPHS
from repro.bench.reporting import render_table
from repro.core import config as C

K = 16


def run_experiment():
    rows = []
    from repro.bench.instances import load_instance

    for inst in SEM_GRAPHS:
        graph = load_instance(inst.name)
        tp = repro.partition(graph, K, C.terapart(seed=1, p=16))
        se = sem_partition(graph, K, seed=1)
        rows.append(
            {
                "graph": inst.name,
                "tp_cut": tp.cut,
                "sem_cut": se.cut,
                "tp_time": tp.modeled_seconds,
                "sem_time": se.modeled_seconds,
                "tp_mem": tp.peak_bytes,
                "sem_mem": se.peak_bytes,
                "tp_balanced": tp.balanced,
                "sem_balanced": se.balanced,
            }
        )
    return rows


def test_table4_sem(run_once, report_sink):
    rows = run_once(run_experiment)
    table = render_table(
        ["graph", "algo", "cut", "modeled time", "mem KiB"],
        [
            row
            for r in rows
            for row in (
                (
                    r["graph"],
                    "TeraPart",
                    r["tp_cut"],
                    f"{r['tp_time']*1e3:.2f}ms",
                    f"{r['tp_mem']/1024:.0f}",
                ),
                (
                    "",
                    "SEM",
                    r["sem_cut"],
                    f"{r['sem_time']*1e3:.2f}ms",
                    f"{r['sem_mem']/1024:.0f}",
                ),
            )
        ],
        title=f"Table IV: TeraPart vs semi-external memory (k={K})",
    )
    report_sink("table4_sem", table)

    for r in rows:
        assert r["tp_balanced"] and r["sem_balanced"], r
        # SEM is much slower (paper: ~an order of magnitude)
        assert r["sem_time"] > 3.0 * r["tp_time"], r
    # TeraPart's cuts at least competitive on average (paper: better on all)
    import numpy as np

    rel = np.mean([r["tp_cut"] / max(1, r["sem_cut"]) for r in rows])
    assert rel < 1.15, rel
