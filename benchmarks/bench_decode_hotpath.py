"""Decode hot path: CSR vs compressed chunk traversal (Section III-A).

The paper's enabling claim is that the partitioner can run *directly on the
compressed graph* because decoding is nearly as fast as a raw CSR scan
(~6% overhead in native code, Fig. 6).  This bench measures the repro's
equivalent numbers on the weblike Set-B stand-in:

* per-edge traversal cost (ns) of the CSR gather, the vectorized bulk
  decode (:meth:`CompressedGraph.decode_chunk`) and the scalar per-vertex
  reference decoder;
* the bulk-over-scalar speedup -- the win of the vectorized decode layer
  over the seed's per-vertex loop (acceptance floor: 5x);
* the measured decode work factor fed into the cost model.

Results are printed, persisted under ``benchmarks/results/`` and appended
to the regression observatory's run database (``$REPRO_RUNDB``, default
``BENCH_runs.jsonl`` at the repo root) as a versioned ``microbench``
record -- the repo's perf trajectory, one record per run, machine-local
numbers.  The pre-observatory flat records live on in ``BENCH_decode.json``
(migrated to the trajectory schema) and were seeded into the run DB.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.bench.reporting import render_table
from repro.graph import access
from repro.graph.compressed import compress_graph
from repro.graph.generators import weblike
from repro.obs.regress.rundb import RunDB, make_microbench_record

DEFAULT_RUNDB = Path(__file__).parent.parent / "BENCH_runs.jsonl"

# weblike Set-B stand-in: power-law web graph, LP-sized chunks
N = 10_000
AVG_DEGREE = 10
SEED = 42
NUM_CHUNKS = 16
REPS = 5


def _best_of(fn, reps: int = REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_experiment() -> dict:
    g = weblike(N, avg_degree=AVG_DEGREE, seed=SEED)
    cg = compress_graph(g)
    # permuted chunks, as LP's scheduler produces them
    order = np.random.default_rng(0).permutation(g.n).astype(np.int64)
    chunks = np.array_split(order, NUM_CHUNKS)
    m = g.num_directed_edges

    t_csr = _best_of(lambda: [access.chunk_adjacency(g, c) for c in chunks])
    t_bulk = _best_of(lambda: [access.chunk_adjacency(cg, c) for c in chunks])

    def scalar():
        # the seed traversal: per-vertex scalar decode, owner fill, concat
        for c in chunks:
            owners, nbrs, wgts = [], [], []
            for i, u in enumerate(c.tolist()):
                nv, wv = cg._decode_scalar(u)
                if wv is None:
                    wv = np.ones(len(nv), dtype=np.int64)
                if len(nv) == 0:
                    continue
                owners.append(np.full(len(nv), i, dtype=np.int64))
                nbrs.append(np.asarray(nv))
                wgts.append(np.asarray(wv))
            if owners:
                np.concatenate(owners), np.concatenate(nbrs), np.concatenate(wgts)

    t_scalar = _best_of(scalar, reps=2)

    return {
        "instance": f"weblike(n={N}, d={AVG_DEGREE}, seed={SEED})",
        "directed_edges": m,
        "csr_ns_per_edge": t_csr / m * 1e9,
        "bulk_ns_per_edge": t_bulk / m * 1e9,
        "scalar_ns_per_edge": t_scalar / m * 1e9,
        "bulk_vs_csr": t_bulk / t_csr,
        "bulk_vs_scalar_speedup": t_scalar / t_bulk,
        "compression_ratio": cg.stats.ratio,
        "work_factor": access.measured_decode_work_factor(),
    }


def _append_rundb(rec: dict) -> None:
    db = RunDB(os.environ.get("REPRO_RUNDB", str(DEFAULT_RUNDB)))
    db.append(make_microbench_record("decode_hotpath", rec))


def test_decode_hotpath(run_once, report_sink):
    rec = run_once(run_experiment)

    rows = [
        ("CSR gather", f"{rec['csr_ns_per_edge']:.1f}", "1.0"),
        (
            "compressed bulk decode",
            f"{rec['bulk_ns_per_edge']:.1f}",
            f"{rec['bulk_vs_csr']:.1f}",
        ),
        (
            "compressed scalar decode",
            f"{rec['scalar_ns_per_edge']:.1f}",
            f"{rec['scalar_ns_per_edge'] / rec['csr_ns_per_edge']:.1f}",
        ),
    ]
    table = render_table(
        ["traversal path", "ns/edge", "vs CSR"],
        rows,
        title=(
            f"Decode hot path on {rec['instance']} "
            f"(bulk speedup {rec['bulk_vs_scalar_speedup']:.1f}x over scalar, "
            f"ratio {rec['compression_ratio']:.2f}x)"
        ),
    )
    report_sink("decode_hotpath", table)
    _append_rundb(rec)

    # the vectorized layer must beat the seed per-vertex loop 5x (ISSUE 1)
    assert rec["bulk_vs_scalar_speedup"] >= 5.0, rec
    # and stay within the smoke-test envelope of the CSR path
    assert rec["bulk_vs_csr"] <= 15.0, rec
